// Package channel implements the Slash RDMA channel (§6): a point-to-point,
// FIFO, zero-copy data channel built on an RDMA-shared circular queue with
// credit-based flow control.
//
// The circular queue lives in the consumer's registered memory as c
// contiguous fixed-size slots (a flat layout: the payload is packed
// right-aligned against the footer, so one RDMA WRITE of used+footer
// bytes transfers both, §6.3). The producer stages
// outgoing buffers in its own registered ring and pushes them with one-sided
// RDMA WRITEs; the consumer polls local memory for arrival and processes the
// data region in place. Credits flow back through a cumulative 8-byte
// counter in the producer's registered memory: the consumer coalesces up to
// c/2 releases into one inline WRITE of its running release total (flushing
// eagerly when the producer nears starvation, on an idle poll, and on
// Close), and the producer computes available credits from the counter —
// never involving the consumer's CPU beyond the post.
//
// Protocol invariants (§6.2), enforced and tested here:
//
//  1. A producer decrements its credit on every posted buffer.
//  2. A consumer returns exactly one credit per processed buffer — the
//     credit counter always equals the number of released buffers, even
//     though several releases may travel in one WRITE.
//  3. A producer with zero credits cannot acquire a slot, so it can never
//     overwrite a buffer the consumer has not released.
//
// Under these rules delivery is FIFO at a self-adjusting rate.
package channel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/slash-stream/slash/internal/metrics"
	"github.com/slash-stream/slash/internal/rdma"
)

// FooterSize is the per-slot metadata footer: a 4-byte payload length, three
// reserved bytes, and the final polling byte (§6.3 — polling the last byte
// of the footer guarantees the whole buffer has landed, because RDMA WRITEs
// fill memory from lower to higher addresses).
const FooterSize = 8

// DefaultCredits is the slot count used when Config.Credits is zero. The
// paper finds c = 8 best on its hardware (§8.3.2).
const DefaultCredits = 8

// DefaultSlotSize is the per-slot size used when Config.SlotSize is zero.
// 32 KB saturates the simulated link in the paper's Fig. 8a sweep.
const DefaultSlotSize = 32 * 1024

// Config describes one RDMA channel.
type Config struct {
	// Credits is the number of slots c in the circular queue. It bounds
	// the producer's in-flight buffers (the pipelining depth).
	Credits int
	// SlotSize is the size m of one slot in bytes, including the footer.
	SlotSize int
	// CreditWaitTimeout bounds how long Acquire spins waiting for a credit.
	// Zero (the default) waits forever — correct for healthy fabrics, where
	// a credit always comes back. With a fault injector in play a dead
	// consumer or cut link makes credits stop flowing without any completion
	// ever failing on the producer's QP, so a bounded wait is the only way a
	// producer notices. On expiry the endpoint latches ErrCreditTimeout and
	// Acquire returns nil.
	CreditWaitTimeout time.Duration
}

func (c *Config) fill() error {
	if c.Credits == 0 {
		c.Credits = DefaultCredits
	}
	if c.SlotSize == 0 {
		c.SlotSize = DefaultSlotSize
	}
	if c.Credits < 1 {
		return fmt.Errorf("channel: credits %d < 1", c.Credits)
	}
	if c.SlotSize < FooterSize+1 {
		return fmt.Errorf("channel: slot size %d too small", c.SlotSize)
	}
	return nil
}

// Errors returned by the channel API.
var (
	ErrPayloadSize   = errors.New("channel: payload exceeds data region")
	ErrReleaseOrder  = errors.New("channel: buffers must be released in FIFO order")
	ErrClosed        = errors.New("channel: closed")
	ErrDoubleRelease = errors.New("channel: buffer already released")
	// ErrCreditTimeout is latched when Acquire waited longer than
	// Config.CreditWaitTimeout for a credit — the signature of a consumer
	// (or the link to it) dying silently from the producer's perspective.
	ErrCreditTimeout = errors.New("channel: timed out waiting for credit")
)

// stickyErr latches the first fatal error of a channel endpoint. Every entry
// point checks it, so after one failure the endpoint refuses further work
// with the root cause rather than a cascade of secondary errors. The box
// indirection keeps CompareAndSwap safe: error values of differing concrete
// types cannot be CASed directly.
type stickyErr struct {
	p atomic.Pointer[errBox]
}

type errBox struct{ err error }

// get returns the latched error, or nil while the endpoint is healthy.
func (s *stickyErr) get() error {
	if b := s.p.Load(); b != nil {
		return b.err
	}
	return nil
}

// latch records err if no error is latched yet and reports whether this call
// won the race. A nil err never latches.
func (s *stickyErr) latch(err error) bool {
	if err == nil {
		return false
	}
	return s.p.CompareAndSwap(nil, &errBox{err: err})
}

// New builds an RDMA channel from the producer's NIC to the consumer's NIC.
// This is the setup phase of the protocol (§6.2): it allocates the circular
// queues in registered memory on both sides and establishes the reliable
// connection.
func New(prodNIC, consNIC *rdma.NIC, cfg Config) (*Producer, *Consumer, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	ring, err := consNIC.RegisterMemory(cfg.Credits * cfg.SlotSize)
	if err != nil {
		return nil, nil, err
	}
	staging, err := prodNIC.RegisterMemory(cfg.Credits * cfg.SlotSize)
	if err != nil {
		ring.Deregister()
		return nil, nil, err
	}
	// The credit region is the cumulative release counter: one 8-byte
	// little-endian total, written inline by the consumer and read with
	// AtomicLoad by the producer.
	creditMR, err := prodNIC.RegisterMemory(8)
	if err != nil {
		ring.Deregister()
		staging.Deregister()
		return nil, nil, err
	}
	qpProd, qpCons, err := rdma.Connect(prodNIC, consNIC, rdma.QPOptions{}, rdma.QPOptions{})
	if err != nil {
		ring.Deregister()
		staging.Deregister()
		creditMR.Deregister()
		return nil, nil, err
	}
	p, err := NewProducer(cfg, qpProd, qpProd.SendCQ(), staging, creditMR, ring.RKey())
	if err != nil {
		return nil, nil, err
	}
	c, err := NewConsumer(cfg, qpCons, qpCons.SendCQ(), ring, creditMR.RKey())
	if err != nil {
		return nil, nil, err
	}
	if reg := prodNIC.Fabric().Metrics(); reg != nil {
		// The producer QP id is fabric-unique, so it doubles as the
		// channel label even when several channels share a NIC pair.
		ch := fmt.Sprintf("{ch=%q}", qpProd.ID())
		p.mStallNs = reg.Counter("channel_credit_stall_ns_total" + ch)
		p.mStalls = reg.Counter("channel_credit_stalls_total" + ch)
		p.mSpins = reg.Counter("channel_acquire_spins_total" + ch)
		p.mPosted = reg.Counter("channel_slots_posted_total" + ch)
		c.mReleased = reg.Counter("channel_slots_released_total" + ch)
		c.mCreditWrites = reg.Counter("channel_credit_writes_total" + ch)
		c.mPollMisses = reg.Counter("channel_poll_misses_total" + ch)
		c.mBacklogMax = reg.Gauge("channel_backlog_slots_max" + ch)
		p.mEndpErrs = reg.Counter(fmt.Sprintf("channel_endpoint_errors_total{ch=%q,side=\"producer\"}", qpProd.ID()))
		c.mEndpErrs = reg.Counter(fmt.Sprintf("channel_endpoint_errors_total{ch=%q,side=\"consumer\"}", qpProd.ID()))
	}
	return p, c, nil
}

// Producer is the sending endpoint of an RDMA channel.
type Producer struct {
	cfg      Config
	qp       Verbs
	cq       CompletionSource
	staging  Memory
	ringRKey uint32
	creditMR Memory

	// bufs is the preallocated SendBuffer ring, one per staging slot;
	// Acquire hands out &bufs[seq%c] without allocating.
	bufs []SendBuffer

	sent     atomic.Uint64 // buffers posted so far
	acquired bool
	closed   atomic.Bool

	// err latches the first fatal endpoint error (async completion failure,
	// CQ overrun, credit timeout); see stickyErr.
	err stickyErr

	// Credit-stall instrumentation (§6.2 step 3: wait for credit); all nil
	// without a fabric metrics registry.
	mStallNs  *metrics.Counter
	mStalls   *metrics.Counter
	mSpins    *metrics.Counter
	mPosted   *metrics.Counter
	mEndpErrs *metrics.Counter
}

// fail latches err as the endpoint's sticky error and returns the error the
// endpoint actually died with (the first latched one wins).
func (p *Producer) fail(err error) error {
	if p.err.latch(err) {
		p.mEndpErrs.Inc()
	}
	return p.err.get()
}

// SendBuffer is a slot acquired from the producer's staging ring. Data is
// the writable data region (slot minus footer).
type SendBuffer struct {
	Data []byte
	// Thread and Epoch tag the chunk for transports that frame per logical
	// channel (the trunk's 24-byte header). The per-pair producer ignores
	// them — its payload already carries the chunk header — so setting them
	// is free on both transports.
	Thread uint32
	Epoch  uint64
	seq    uint64
}

// DataSize returns the usable payload bytes per slot.
func (p *Producer) DataSize() int { return p.cfg.SlotSize - FooterSize }

// Credits returns the producer's currently available credits. The credit
// region holds the consumer's cumulative release total; reading it with
// AtomicLoad is coherent with the consumer's inline counter WRITEs, so the
// value can never be torn and never exceeds the true release count
// (invariant 3 stays safe even while a flush is in flight).
func (p *Producer) Credits() int {
	returned, _ := p.creditMR.AtomicLoad(0)
	return p.cfg.Credits - int(p.sent.Load()-returned)
}

// TryAcquire hands out the next staging slot if a credit is available.
// Invariant 3: with zero credits no slot is handed out.
func (p *Producer) TryAcquire() (*SendBuffer, bool) {
	if p.closed.Load() || p.acquired || p.Credits() <= 0 {
		return nil, false
	}
	p.acquired = true
	seq := p.sent.Load()
	b := &p.bufs[seq%uint64(p.cfg.Credits)]
	b.seq = seq
	return b, true
}

// stallSampleSpins is how many Acquire spins pass between clock samples in
// the credit-stall loop. Sampling every spin taxed the whole wait with one
// vDSO clock read per iteration even when no timeout was configured to
// fire; every 64th spin keeps timeout detection bounded (a Gosched-paced
// spin is microseconds, so detection lags the deadline by well under a
// millisecond) at 1/64 the clock cost.
const stallSampleSpins = 64

// Acquire spins until a credit is available (step 3 of the transfer phase:
// wait for credit). It returns nil once the channel is closed, a fatal
// asynchronous error — including a send-CQ overrun — is observed, or the
// configured CreditWaitTimeout expires; Err reports which.
func (p *Producer) Acquire() *SendBuffer {
	var stallStart int64
	var spins uint
	trackStall := p.mStallNs != nil || p.cfg.CreditWaitTimeout > 0
	for {
		// Drain completions before handing out a slot: a credit that never
		// comes back often means the data write failed or the CQ overran,
		// and only the CQ knows. Checking up front also keeps a broken
		// channel from handing out buffers while credits remain.
		if err := p.drainErrors(); err != nil {
			return nil
		}
		if b, ok := p.TryAcquire(); ok {
			if stallStart != 0 {
				p.mStallNs.Add(uint64(time.Now().UnixNano() - stallStart))
				p.mStalls.Inc()
			}
			return b
		}
		if p.closed.Load() {
			return nil
		}
		if trackStall && spins%stallSampleSpins == 0 {
			now := time.Now().UnixNano()
			if stallStart == 0 {
				stallStart = now
			} else if d := p.cfg.CreditWaitTimeout; d > 0 && now-stallStart > int64(d) {
				p.fail(fmt.Errorf("%w (waited %v, %d credits outstanding)",
					ErrCreditTimeout, d, p.cfg.Credits-p.Credits()))
				return nil
			}
		}
		spins++
		p.mSpins.Inc()
		runtime.Gosched()
	}
}

// Post transfers the acquired buffer with used payload bytes as a single
// RDMA WRITE (§6.3). The payload is packed right-aligned against the
// footer, so the write covers exactly used+FooterSize bytes ending at the
// slot boundary: a small message costs wire bytes proportional to its
// payload rather than the slot size, while the footer's polling byte is
// still the last byte written (WRITEs fill memory from lower to higher
// addresses) and still sits at a fixed offset for the consumer to poll.
// Invariant 1: posting consumes one credit.
func (p *Producer) Post(b *SendBuffer, used int) error {
	if p.closed.Load() {
		return ErrClosed
	}
	if b == nil || !p.acquired || b.seq != p.sent.Load() {
		return fmt.Errorf("channel: posting a stale buffer")
	}
	if used < 0 || used > p.DataSize() {
		return ErrPayloadSize
	}
	if err := p.drainErrors(); err != nil {
		return err
	}
	slot := int(p.sent.Load() % uint64(p.cfg.Credits))
	base := slot * p.cfg.SlotSize
	buf := p.staging.Bytes()[base : base+p.cfg.SlotSize]
	// Right-align the payload against the footer. The caller filled
	// Data[:used] at the slot start; the overlapping copy is memmove-safe.
	pay := p.cfg.SlotSize - FooterSize - used
	copy(buf[pay:], buf[:used])
	foot := buf[p.cfg.SlotSize-FooterSize:]
	foot[0] = byte(used)
	foot[1] = byte(used >> 8)
	foot[2] = byte(used >> 16)
	foot[3] = byte(used >> 24)
	foot[4], foot[5], foot[6] = 0, 0, 0
	foot[7] = generation(b.seq, p.cfg.Credits) // the polling byte
	// Selective signaling: success needs no completion, errors always
	// complete and are surfaced by drainErrors on a later call.
	if err := p.qp.PostWrite(b.seq, buf[pay:], p.ringRKey, base+pay, false); err != nil {
		return p.fail(fmt.Errorf("channel: post failed: %w", err))
	}
	p.sent.Add(1)
	p.acquired = false
	p.mPosted.Inc()
	return nil
}

// drainErrors surfaces asynchronous completion errors (bad rkey, bounds,
// CQ overrun). When the queue pair itself died, the QPFailure — which names
// the link and the work-completion status — is preferred over the raw
// completion error, so layers above can report which connection failed.
func (p *Producer) drainErrors() error {
	if err := p.err.get(); err != nil {
		return err
	}
	if p.cq.Overrun() {
		return p.fail(fmt.Errorf("channel: send %w", rdma.ErrCQOverrun))
	}
	for {
		c, ok := p.cq.TryPoll()
		if !ok {
			return nil
		}
		if c.Err != nil {
			return p.fail(fmt.Errorf("channel: async write failure: %w", qpCause(p.qp, c)))
		}
	}
}

// qpCause picks the most informative error for a failed completion: the QP's
// recorded failure (a *rdma.QPFailure naming the link and root-cause status)
// when the QP is in the error state, the bare completion error otherwise.
// Flush completions in particular carry only ErrWRFlush; the QPFailure behind
// them explains why the QP was flushing.
func qpCause(qp Verbs, c rdma.Completion) error {
	if err := qp.Err(); err != nil {
		return err
	}
	return c.Err
}

// Err returns the endpoint's sticky fatal error, or nil while it is healthy.
// Safe to call from any goroutine.
func (p *Producer) Err() error { return p.err.get() }

// Sent returns the number of buffers posted.
func (p *Producer) Sent() uint64 { return p.sent.Load() }

// Close shuts the producer side down gracefully: posted buffers still in
// the queue pair are delivered before the connection tears down, so a
// consumer can drain everything the producer sent. On a dead QP the drain
// completes with flush semantics instead (nothing more reaches the wire),
// so Close terminates in bounded time even mid-failure.
func (p *Producer) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.qp.Drain()
		p.qp.Close()
	}
}

// Consumer is the receiving endpoint of an RDMA channel.
type Consumer struct {
	cfg        Config
	qp         Verbs
	cq         CompletionSource
	ring       Memory
	creditRKey uint32

	// bufs is the preallocated RecvBuffer ring, one per slot; TryPoll hands
	// out &bufs[seq%c] without allocating.
	bufs []RecvBuffer

	received atomic.Uint64 // buffers observed via polling
	released atomic.Uint64 // credits returned (total releases, invariant 2)

	// Credit coalescing state: flushed is the release total last written to
	// the producer's counter; a flush is due once released-flushed reaches
	// flushAt (= max(1, c/2)), the producer nears starvation, the poll loop
	// idles, or the consumer closes. flushMu serializes flushes so the
	// cumulative totals post in nondecreasing order.
	flushAt      int
	flushed      atomic.Uint64
	flushMu      sync.Mutex
	creditWrites atomic.Uint64

	closed atomic.Bool

	// err latches the first fatal endpoint error (credit-write failure, CQ
	// overrun, footer corruption); see stickyErr.
	err stickyErr

	// Poll instrumentation; all nil without a fabric metrics registry.
	mReleased     *metrics.Counter
	mCreditWrites *metrics.Counter
	mPollMisses   *metrics.Counter
	mBacklogMax   *metrics.Gauge
	mEndpErrs     *metrics.Counter
}

// fail latches err as the endpoint's sticky error and returns the error the
// endpoint actually died with (the first latched one wins).
func (c *Consumer) fail(err error) error {
	if c.err.latch(err) {
		c.mEndpErrs.Inc()
	}
	return c.err.get()
}

// RecvBuffer is a received slot. Data aliases the ring slot's payload; it is
// valid until Release.
type RecvBuffer struct {
	Data []byte
	// Thread and Epoch mirror the sender-side tags on framing transports
	// (see SendBuffer); zero on the per-pair channel.
	Thread uint32
	Epoch  uint64
	seq    uint64
	done   bool
}

// TryPoll checks local memory for the next inbound buffer (step 1 of the
// consumer protocol). The ring region's write version counts published slot
// writes; because the QP is FIFO, version v proves slots [0, v) have fully
// landed, making the footer's polling byte readable without a data race.
func (c *Consumer) TryPoll() (*RecvBuffer, bool) {
	if c.closed.Load() {
		return nil, false
	}
	// Back-pressure the producer: do not run more than Credits buffers
	// ahead of releases, mirroring hardware where un-released slots are
	// simply not rewritten yet.
	backlog := int64(c.ring.WriteVersion() - c.received.Load())
	if backlog <= 0 {
		// Footer-poll miss: the write version has not advanced. Push out any
		// coalesced credits — an idle poll loop means the producer may be
		// waiting on them — and drain the send CQ so a credit-write failure
		// or CQ overrun surfaces through Err instead of stalling forever.
		// A failed flush latches the sticky error the same way: silently
		// dropping it here once cost the producer an unbounded stall.
		c.mPollMisses.Inc()
		if c.released.Load() != c.flushed.Load() {
			if err := c.flushCredits(); err != nil {
				c.fail(err)
			}
		}
		c.drainErrors()
		return nil, false
	}
	c.mBacklogMax.SetMax(backlog)
	slot := int(c.received.Load() % uint64(c.cfg.Credits))
	base := slot * c.cfg.SlotSize
	buf := c.ring.Bytes()[base : base+c.cfg.SlotSize]
	foot := buf[c.cfg.SlotSize-FooterSize:]
	if foot[7] != generation(c.received.Load(), c.cfg.Credits) {
		// The version advanced for a later pipelined write while this
		// slot's content is from a previous round — cannot happen on a
		// FIFO QP; treat as corruption.
		c.fail(fmt.Errorf("channel: polling byte mismatch at seq %d", c.received.Load()))
		return nil, false
	}
	used := int(uint32(foot[0]) | uint32(foot[1])<<8 | uint32(foot[2])<<16 | uint32(foot[3])<<24)
	if used > c.cfg.SlotSize-FooterSize {
		c.fail(fmt.Errorf("channel: corrupt footer length %d at seq %d", used, c.received.Load()))
		return nil, false
	}
	seq := c.received.Load()
	rb := &c.bufs[seq%uint64(c.cfg.Credits)]
	rb.Data = buf[c.cfg.SlotSize-FooterSize-used : c.cfg.SlotSize-FooterSize]
	rb.seq = seq
	rb.done = false
	c.received.Add(1) // step 2: mark the buffer for processing
	return rb, true
}

// Release returns one credit to the producer (step 3, invariant 2). Credits
// are coalesced: the release is counted locally and the cumulative total is
// written to the producer's credit region once flushAt releases are pending
// — or immediately when the producer is near starvation, so coalescing can
// never deadlock the channel. Buffers must be released in FIFO order: the
// slot only becomes overwritable once the credit is returned.
func (c *Consumer) Release(b *RecvBuffer) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if b.done {
		return ErrDoubleRelease
	}
	if b.seq != c.released.Load() {
		return ErrReleaseOrder
	}
	if err := c.drainErrors(); err != nil {
		return err
	}
	b.done = true
	rel := c.released.Add(1)
	c.mReleased.Inc()
	// Flush once half the ring's worth of releases is pending. A starved
	// producer never waits longer than c/2 releases of an actively-working
	// consumer; an idle consumer flushes from the poll loop instead (see
	// TryPoll), and Close flushes unconditionally.
	if int(rel-c.flushed.Load()) >= c.flushAt {
		return c.flushCredits()
	}
	return nil
}

// flushCredits writes the cumulative release total into the producer's
// credit region as one inline 8-byte WRITE. One flush covers every release
// since the previous flush; because the total is cumulative and posts are
// serialized under flushMu, the producer's counter is always a value the
// release count actually passed through — invariants 1–3 hold unchanged.
//
// A failed post latches the endpoint error and stops further coalescing: a
// flush that cannot reach the producer makes every pending and future
// release undeliverable, so pretending to accumulate them would only delay
// the diagnosis.
func (c *Consumer) flushCredits() error {
	if err := c.err.get(); err != nil {
		return err
	}
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	rel := c.released.Load()
	if rel == c.flushed.Load() {
		return nil
	}
	if err := c.qp.PostWriteU64(rel, c.creditRKey, 0, rel, false); err != nil {
		return c.fail(fmt.Errorf("channel: credit flush failed: %w", err))
	}
	c.flushed.Store(rel)
	c.creditWrites.Add(1)
	c.mCreditWrites.Inc()
	return nil
}

// CreditWrites returns how many credit-counter WRITEs the consumer has
// posted — the reverse-path message count that coalescing minimizes.
func (c *Consumer) CreditWrites() uint64 { return c.creditWrites.Load() }

func (c *Consumer) drainErrors() error {
	if err := c.err.get(); err != nil {
		return err
	}
	if c.cq.Overrun() {
		return c.fail(fmt.Errorf("channel: credit %w", rdma.ErrCQOverrun))
	}
	for {
		comp, ok := c.cq.TryPoll()
		if !ok {
			return nil
		}
		if comp.Err != nil {
			return c.fail(fmt.Errorf("channel: async credit failure: %w", qpCause(c.qp, comp)))
		}
	}
}

// Backlog returns the number of buffers that have landed in the ring but
// have not been polled yet — the channel's inbound queue depth.
func (c *Consumer) Backlog() int {
	return int(c.ring.WriteVersion() - c.received.Load())
}

// Err returns the endpoint's sticky fatal error, or nil while it is healthy.
// Safe to call from any goroutine.
func (c *Consumer) Err() error { return c.err.get() }

// Received returns the number of buffers polled so far.
func (c *Consumer) Received() uint64 { return c.received.Load() }

// DiscardBacklog polls and releases every buffer that has landed in the ring
// but was never consumed, returning how many were dropped. This is the
// fence-teardown path of the recovery plane: chunks queued toward a node
// being torn down are discarded — replay from upstream journals regenerates
// them — but the controller still needs the count for replay accounting.
// Credit-return failures are swallowed (not latched) because the peer of a
// fenced link is typically already dead and the slots will never be reused.
func (c *Consumer) DiscardBacklog() int {
	n := 0
	for c.Backlog() > 0 {
		b, ok := c.TryPoll()
		if !ok {
			break
		}
		b.done = true
		c.released.Add(1)
		c.mReleased.Inc()
		n++
	}
	if n > 0 {
		c.flushMu.Lock()
		rel := c.released.Load()
		if rel != c.flushed.Load() {
			// Best-effort credit return, bypassing flushCredits so a failed
			// post on the dead link does not latch the sticky error.
			if err := c.qp.PostWriteU64(rel, c.creditRKey, 0, rel, false); err == nil {
				c.flushed.Store(rel)
				c.creditWrites.Add(1)
				c.mCreditWrites.Inc()
			}
		}
		c.flushMu.Unlock()
	}
	return n
}

// Close shuts the consumer side down. Credits coalesced but not yet flushed
// are written out and drained first, so a producer that outlives this
// consumer observes every release that happened before Close. On a dead QP
// the drain completes with flush semantics (queued requests complete with
// StatusWRFlush at host speed), so Close terminates in bounded time; a
// failed final flush is latched so post-mortem Err still reports it.
func (c *Consumer) Close() {
	if c.closed.CompareAndSwap(false, true) {
		if err := c.flushCredits(); err != nil {
			c.fail(err)
		}
		c.qp.Drain()
		c.qp.Close()
	}
}

// generation derives the polling byte for a slot write: it changes every
// time the ring wraps, so a stale footer from a previous round can never be
// mistaken for a fresh one.
func generation(seq uint64, credits int) byte {
	return byte((seq/uint64(credits))%255) + 1
}
