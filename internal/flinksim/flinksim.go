// Package flinksim implements the plug-and-play baseline of the paper's
// evaluation (§3.1, §8.1.1): a production-style scale-out SPE in the mold of
// Apache Flink deployed on IP-over-InfiniBand. The design reproduces the
// structural costs the paper blames for Flink's gap:
//
//   - Socket-based networking: all inter-node traffic crosses the simulated
//     IPoIB stack (kernel-crossing cost and user/kernel copies on both
//     sides, package ipoib) instead of RDMA verbs.
//   - Queue-based exchange: producer (task) threads never touch the network;
//     they serialize records into buffers and hand them to dedicated network
//     sender threads through bounded queues, and receiver threads hand
//     inbound buffers to consumer threads through further queues — the
//     "expensive queue-based synchronization among network and data
//     processing threads" of §1.
//   - Operator-to-thread parallelism with hash re-partitioning before every
//     stateful operator, so each consumer owns co-partitioned local state.
//   - An optional per-record managed-runtime tax modelling JVM overhead
//     (object churn, virtual dispatch), disabled by default and calibrated
//     by the benchmark harness.
package flinksim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/slash-stream/slash/internal/core"
	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/ipoib"
	"github.com/slash-stream/slash/internal/ssb"
	"github.com/slash-stream/slash/internal/stream"
)

// Config describes the deployment.
type Config struct {
	// Nodes is the number of simulated nodes.
	Nodes int
	// ProducersPerNode and ConsumersPerNode split each node's task slots;
	// the network threads come on top (Flink's netty stack), mirroring the
	// paper's half-for-processing, half-for-network configuration.
	ProducersPerNode int
	ConsumersPerNode int
	// IPoIB models the socket transport costs.
	IPoIB ipoib.Config
	// BatchBytes is the serialized exchange buffer size. Default 32 KiB.
	BatchBytes int
	// QueueDepth bounds the handoff queues between task and network
	// threads. Default 32.
	QueueDepth int
	// FlushRecords bounds watermark staleness. Default 16384.
	FlushRecords int
	// RuntimeTaxLoops burns this many ALU iterations per record on the
	// task threads, modelling managed-runtime overhead. Zero disables.
	RuntimeTaxLoops int
}

func (c *Config) fill() error {
	if c.Nodes < 1 || c.ProducersPerNode < 1 || c.ConsumersPerNode < 1 {
		return fmt.Errorf("flinksim: invalid shape %d/%d/%d", c.Nodes, c.ProducersPerNode, c.ConsumersPerNode)
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 32 << 10
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
	if c.FlushRecords == 0 {
		c.FlushRecords = 16384
	}
	return nil
}

// frame is one exchange buffer in flight.
type frame struct {
	src  int // producer global id
	dest int // consumer global id
	end  bool
	data []byte
}

// frameHeaderSize is the wire size of a frame header on a socket:
// src u32 | dest u32 | end u8 | reserved [3]u8 | len u32.
const frameHeaderSize = 16

var errStopped = errors.New("flinksim: stopped")

// Run executes query q under the Flink-on-IPoIB model. flows is indexed
// [node][producer].
func Run(cfg Config, q *core.Query, flows [][]core.Flow, sink core.Sink) (*core.Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	if len(flows) != cfg.Nodes {
		return nil, fmt.Errorf("flinksim: %d flow groups for %d nodes", len(flows), cfg.Nodes)
	}
	for i := range flows {
		if len(flows[i]) != cfg.ProducersPerNode {
			return nil, fmt.Errorf("flinksim: node %d has %d flows, want %d", i, len(flows[i]), cfg.ProducersPerNode)
		}
	}
	if sink == nil {
		sink = &core.CountingSink{}
	}
	if cfg.BatchBytes < stream.BatchHeaderSize+q.Codec.Size() {
		return nil, fmt.Errorf("flinksim: batch of %d bytes cannot hold one record", cfg.BatchBytes)
	}

	nProd := cfg.Nodes * cfg.ProducersPerNode
	nCons := cfg.Nodes * cfg.ConsumersPerNode

	// One socket per ordered node pair (Flink multiplexes logical channels
	// over TCP connections).
	socks := make([][]*ipoib.Stream, cfg.Nodes)
	for i := range socks {
		socks[i] = make([]*ipoib.Stream, cfg.Nodes)
		for j := range socks[i] {
			if i != j {
				socks[i][j] = ipoib.NewStream(cfg.IPoIB)
			}
		}
	}

	// Handoff queues: task → network per (srcNode, dstNode), and network →
	// consumer per consumer.
	outQ := make([][]chan frame, cfg.Nodes)
	for i := range outQ {
		outQ[i] = make([]chan frame, cfg.Nodes)
		for j := range outQ[i] {
			if i != j {
				outQ[i][j] = make(chan frame, cfg.QueueDepth)
			}
		}
	}
	inQ := make([]chan frame, nCons)
	for i := range inQ {
		inQ[i] = make(chan frame, cfg.QueueDepth)
	}

	run := &runCtl{}
	run.stopAll = func() {
		for i := range socks {
			for j := range socks[i] {
				if socks[i][j] != nil {
					socks[i][j].Close()
				}
			}
		}
	}

	var records, updates atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()

	// Network sender threads: one per directed node pair.
	for src := 0; src < cfg.Nodes; src++ {
		for dst := 0; dst < cfg.Nodes; dst++ {
			if src == dst {
				continue
			}
			wg.Add(1)
			go func(q chan frame, s *ipoib.Stream) {
				defer wg.Done()
				runNetSender(run, q, s)
			}(outQ[src][dst], socks[src][dst])
		}
	}

	// Network receiver threads: one per directed node pair.
	for dst := 0; dst < cfg.Nodes; dst++ {
		for src := 0; src < cfg.Nodes; src++ {
			if src == dst {
				continue
			}
			wg.Add(1)
			go func(s *ipoib.Stream) {
				defer wg.Done()
				runNetReceiver(run, s, inQ)
			}(socks[src][dst])
		}
	}

	// Consumer task threads.
	var consWG sync.WaitGroup
	for c := 0; c < nCons; c++ {
		wg.Add(1)
		consWG.Add(1)
		go func(cid int) {
			defer wg.Done()
			defer consWG.Done()
			runConsumer(run, q, cid, nProd, inQ[cid], sink, &updates)
		}(c)
	}

	// Producer task threads, plus a closer that shuts the per-node socket
	// queues once every producer of that node finished.
	prodWG := make([]sync.WaitGroup, cfg.Nodes)
	for node := 0; node < cfg.Nodes; node++ {
		for p := 0; p < cfg.ProducersPerNode; p++ {
			pid := node*cfg.ProducersPerNode + p
			prodWG[node].Add(1)
			wg.Add(1)
			go func(node, pid, p int) {
				defer wg.Done()
				defer prodWG[node].Done()
				runProducer(run, cfg, q, node, pid, flows[node][p], outQ[node], inQ, &records)
			}(node, pid, p)
		}
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			prodWG[node].Wait()
			for dst, ch := range outQ[node] {
				if dst != node && ch != nil {
					close(ch)
				}
			}
		}(node)
	}

	wg.Wait()
	elapsed := time.Since(start)
	if err := run.err(); err != nil {
		return nil, err
	}
	rep := &core.Report{
		Query:   q.Name,
		Nodes:   cfg.Nodes,
		Threads: cfg.ProducersPerNode + cfg.ConsumersPerNode,
		Records: records.Load(),
		Updates: updates.Load(),
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		rep.RecordsPerSec = float64(rep.Records) / elapsed.Seconds()
	}
	for i := range socks {
		for j := range socks[i] {
			if socks[i][j] != nil {
				s := socks[i][j].Stats()
				rep.NetTxBytes += s.BytesSent
				rep.NetTxMsgs += s.MsgsSent
			}
		}
	}
	return rep, nil
}

func validateQuery(q *core.Query) error {
	if q.Window == nil {
		return core.ErrNoWindow
	}
	if q.Agg == nil && q.JoinSide == nil {
		return core.ErrNoStateful
	}
	if q.Agg != nil && q.JoinSide != nil {
		return core.ErrBothStateful
	}
	return nil
}

type runCtl struct {
	once    sync.Once
	val     atomic.Value
	stopAll func()
	stopped atomic.Bool
}

func (r *runCtl) fail(err error) {
	r.once.Do(func() {
		r.val.Store(err)
		r.stopped.Store(true)
		if r.stopAll != nil {
			r.stopAll()
		}
	})
}

func (r *runCtl) err() error {
	if v := r.val.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// runtimeTax burns CPU modelling managed-runtime overhead.
func runtimeTax(loops int) {
	s := 1
	for i := 0; i < loops; i++ {
		s = s*31 + i
	}
	if s == 42 { // defeat dead-code elimination
		panic("unreachable")
	}
}

// runProducer applies filter/map, hash-partitions into per-consumer batch
// buffers, and hands full buffers to the exchange: directly to local
// consumer queues, or to the node's network sender queue for remote ones.
func runProducer(run *runCtl, cfg Config, q *core.Query, node, pid int, flow core.Flow, out []chan frame, inQ []chan frame, records *atomic.Int64) {
	nCons := len(inQ)
	writers := make([]*stream.BatchWriter, nCons)
	bufs := make([][]byte, nCons)
	wm := stream.NoWatermark
	var rec stream.Record
	var local int64
	sinceFlush := 0

	send := func(dest int, data []byte, end bool) bool {
		f := frame{src: pid, dest: dest, end: end, data: data}
		destNode := dest / (nCons / cfg.Nodes)
		if destNode == node {
			// Local exchange: still a queue handoff, no socket.
			select {
			case inQ[dest] <- f:
				return true
			default:
			}
			for {
				if run.stopped.Load() {
					return false
				}
				select {
				case inQ[dest] <- f:
					return true
				case <-time.After(time.Millisecond):
				}
			}
		}
		for {
			if run.stopped.Load() {
				return false
			}
			select {
			case out[destNode] <- f:
				return true
			case <-time.After(time.Millisecond):
			}
		}
	}
	flush := func(dest int) bool {
		w := writers[dest]
		if w == nil || w.Len() == 0 {
			return true
		}
		used := w.FinishData(wm)
		data := bufs[dest][:used]
		writers[dest] = nil
		bufs[dest] = nil
		return send(dest, data, false)
	}

	for {
		if run.stopped.Load() {
			return
		}
		if !flow.Next(&rec) {
			break
		}
		local++
		sinceFlush++
		if rec.Time > wm {
			wm = rec.Time
		}
		runtimeTax(cfg.RuntimeTaxLoops)
		if q.Filter != nil && !q.Filter(&rec) {
			continue
		}
		if q.Map != nil {
			q.Map(&rec)
		}
		dest := int(hash64(rec.Key) % uint64(nCons))
		w := writers[dest]
		if w == nil {
			// A fresh heap buffer per batch: the allocation churn of a
			// managed exchange stack.
			bufs[dest] = make([]byte, cfg.BatchBytes)
			nw, err := stream.NewBatchWriter(bufs[dest], q.Codec)
			if err != nil {
				run.fail(err)
				return
			}
			writers[dest] = nw
			w = nw
		}
		if err := w.Append(&rec); err != nil {
			if !errors.Is(err, stream.ErrBatchFull) {
				run.fail(err)
				return
			}
			if !flush(dest) {
				return
			}
			bufs[dest] = make([]byte, cfg.BatchBytes)
			nw, err := stream.NewBatchWriter(bufs[dest], q.Codec)
			if err != nil {
				run.fail(err)
				return
			}
			writers[dest] = nw
			if err := nw.Append(&rec); err != nil {
				run.fail(err)
				return
			}
		}
		if sinceFlush >= cfg.FlushRecords {
			sinceFlush = 0
			for d := 0; d < nCons; d++ {
				if !flush(d) {
					return
				}
			}
		}
	}
	records.Add(local)
	for d := 0; d < nCons; d++ {
		if !flush(d) {
			return
		}
	}
	// End-of-stream tokens to every consumer.
	for d := 0; d < nCons; d++ {
		buf := make([]byte, stream.BatchHeaderSize+q.Codec.Size())
		w, err := stream.NewBatchWriter(buf, q.Codec)
		if err != nil {
			run.fail(err)
			return
		}
		used := w.FinishEnd(wm)
		if !send(d, buf[:used], true) {
			return
		}
	}
}

// runNetSender drains one node-pair queue onto the socket.
func runNetSender(run *runCtl, q chan frame, s *ipoib.Stream) {
	hdr := make([]byte, frameHeaderSize)
	for f := range q {
		putU32(hdr[0:], uint32(f.src))
		putU32(hdr[4:], uint32(f.dest))
		if f.end {
			hdr[8] = 1
		} else {
			hdr[8] = 0
		}
		hdr[9], hdr[10], hdr[11] = 0, 0, 0
		putU32(hdr[12:], uint32(len(f.data)))
		if err := s.Send(hdr); err != nil {
			if !run.stopped.Load() {
				run.fail(err)
			}
			return
		}
		if err := s.Send(f.data); err != nil {
			if !run.stopped.Load() {
				run.fail(err)
			}
			return
		}
	}
	s.Close()
}

// runNetReceiver parses frames off the socket and routes them to consumer
// queues — the second queue handoff of the exchange.
func runNetReceiver(run *runCtl, s *ipoib.Stream, inQ []chan frame) {
	hdr := make([]byte, frameHeaderSize)
	for {
		if err := s.RecvFull(hdr); err != nil {
			if !errors.Is(err, ipoib.ErrClosed) && !run.stopped.Load() {
				run.fail(err)
			}
			return
		}
		src := int(getU32(hdr[0:]))
		dest := int(getU32(hdr[4:]))
		end := hdr[8] == 1
		n := int(getU32(hdr[12:]))
		if dest < 0 || dest >= len(inQ) || n < 0 || n > 1<<26 {
			run.fail(fmt.Errorf("flinksim: corrupt frame header dest=%d len=%d", dest, n))
			return
		}
		data := make([]byte, n) // deserialization copy into a fresh buffer
		if err := s.RecvFull(data); err != nil {
			if !run.stopped.Load() {
				run.fail(err)
			}
			return
		}
		f := frame{src: src, dest: dest, end: end, data: data}
		for {
			if run.stopped.Load() {
				return
			}
			select {
			case inQ[dest] <- f:
			case <-time.After(time.Millisecond):
				continue
			}
			break
		}
	}
}

// runConsumer is one window-operator task: it dequeues exchange buffers,
// deserializes records, updates co-partitioned local state, and triggers
// windows once every producer's watermark passed their end.
func runConsumer(run *runCtl, q *core.Query, cid, nProd int, in chan frame, sink core.Sink, updates *atomic.Int64) {
	srcWM := make([]stream.Watermark, nProd)
	ended := make([]bool, nProd)
	for i := range srcWM {
		srcWM[i] = stream.NoWatermark
	}
	state := map[uint64]*ssb.Table{}
	var wins []uint64
	var rec stream.Record
	var local int64
	remaining := nProd

	minWM := func() stream.Watermark {
		m := stream.Watermark(1<<63 - 1)
		for i := range srcWM {
			if !ended[i] && srcWM[i] < m {
				m = srcWM[i]
			}
		}
		return m
	}
	trigger := func(now stream.Watermark) {
		for win, tbl := range state {
			if q.Window.End(win) > now {
				continue
			}
			if q.Agg != nil {
				agg := q.Agg
				tbl.ForEachAgg(func(key uint64, st []byte) {
					sink.EmitAgg(cid, win, key, agg.Result(st))
				})
			} else {
				tbl.ForEachBag(func(key uint64, elems []crdt.BagElem) {
					l, r := splitBag(elems)
					sink.EmitJoin(cid, win, key, l, r)
				})
			}
			delete(state, win)
		}
	}

	for remaining > 0 {
		if run.stopped.Load() {
			return
		}
		var f frame
		select {
		case f = <-in:
		case <-time.After(time.Millisecond):
			continue
		}
		r, err := stream.NewBatchReader(f.data, q.Codec)
		if err != nil {
			run.fail(err)
			return
		}
		if f.end || r.Kind() == stream.KindEnd {
			if f.src >= 0 && f.src < nProd && !ended[f.src] {
				ended[f.src] = true
				remaining--
			}
			trigger(minWM())
			continue
		}
		if f.src >= 0 && f.src < nProd && r.Watermark() > srcWM[f.src] {
			srcWM[f.src] = r.Watermark()
		}
		for r.Next(&rec) {
			wins = q.Window.Assign(rec.Time, wins[:0])
			for _, win := range wins {
				tbl := state[win]
				if tbl == nil {
					if q.Agg != nil {
						tbl = ssb.NewAggTable(q.Agg)
					} else {
						tbl = ssb.NewBagTable()
					}
					state[win] = tbl
				}
				var err error
				if q.Agg != nil {
					err = tbl.UpdateAgg(&rec)
				} else {
					e := crdt.BagFromRecord(&rec, q.JoinSide(&rec))
					err = tbl.AppendBag(rec.Key, &e)
				}
				if err != nil {
					run.fail(err)
					return
				}
				local++
			}
		}
		trigger(minWM())
	}
	trigger(stream.Watermark(1<<63 - 1))
	updates.Add(local)
}

func splitBag(elems []crdt.BagElem) (left, right int) {
	for i := range elems {
		if elems[i].Side == 0 {
			left++
		} else {
			right++
		}
	}
	return
}

func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
