package flinksim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/slash-stream/slash/internal/core"
	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
	"github.com/slash-stream/slash/internal/window"
)

var testCodec = stream.MustCodec(32)

func genFlows(rng *rand.Rand, nodes, producers, recsPerFlow, keyRange int) ([][]core.Flow, []stream.Record) {
	var all []stream.Record
	flows := make([][]core.Flow, nodes)
	for n := 0; n < nodes; n++ {
		flows[n] = make([]core.Flow, producers)
		for p := 0; p < producers; p++ {
			recs := make([]stream.Record, recsPerFlow)
			ts := int64(0)
			for i := range recs {
				ts += rng.Int63n(15)
				recs[i] = stream.Record{
					Key:  uint64(rng.Intn(keyRange)),
					Time: ts,
					V0:   rng.Int63n(100) - 50,
					V1:   int64(rng.Intn(2)),
				}
			}
			all = append(all, recs...)
			flows[n][p] = core.NewSliceFlow(recs)
		}
	}
	return flows, all
}

func smallConfig(nodes, producers, consumers int) Config {
	return Config{
		Nodes:            nodes,
		ProducersPerNode: producers,
		ConsumersPerNode: consumers,
		BatchBytes:       1024,
		QueueDepth:       8,
		FlushRecords:     64,
	}
}

func oracleSum(recs []stream.Record, w window.Assigner) map[uint64]map[uint64]int64 {
	out := map[uint64]map[uint64]int64{}
	var wins []uint64
	for i := range recs {
		r := recs[i]
		wins = w.Assign(r.Time, wins[:0])
		for _, win := range wins {
			if out[win] == nil {
				out[win] = map[uint64]int64{}
			}
			out[win][r.Key] += r.V0
		}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	win, _ := window.NewTumbling(100)
	q := &core.Query{Name: "q", Codec: testCodec, Window: win, Agg: crdt.Sum{}}
	if _, err := Run(Config{}, q, nil, nil); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := smallConfig(2, 1, 1)
	if _, err := Run(cfg, q, [][]core.Flow{{core.NewSliceFlow(nil)}}, nil); err == nil {
		t.Fatal("wrong flow shape accepted")
	}
	bad := cfg
	bad.BatchBytes = 8
	flows := [][]core.Flow{{core.NewSliceFlow(nil)}, {core.NewSliceFlow(nil)}}
	if _, err := Run(bad, q, flows, nil); err == nil {
		t.Fatal("tiny batch accepted")
	}
	if _, err := Run(cfg, &core.Query{Codec: testCodec, Window: win}, flows, nil); err == nil {
		t.Fatal("stateless query accepted")
	}
}

func TestDistributedSumEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	flows, all := genFlows(rng, 3, 2, 400, 23)
	win, _ := window.NewTumbling(500)
	q := &core.Query{Name: "sum", Codec: testCodec, Window: win, Agg: crdt.Sum{}}
	col := &core.Collector{}
	rep, err := Run(smallConfig(3, 2, 2), q, flows, col)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != int64(len(all)) {
		t.Fatalf("records = %d, want %d", rep.Records, len(all))
	}
	oracle := oracleSum(all, win)
	got := map[uint64]map[uint64]int64{}
	for _, r := range col.Aggs() {
		if got[r.Win] == nil {
			got[r.Win] = map[uint64]int64{}
		}
		if _, dup := got[r.Win][r.Key]; dup {
			t.Fatalf("duplicate emission win=%d key=%d", r.Win, r.Key)
		}
		got[r.Win][r.Key] = r.Value
	}
	if len(got) != len(oracle) {
		t.Fatalf("windows: got %d, want %d", len(got), len(oracle))
	}
	for w, keys := range oracle {
		for k, v := range keys {
			if got[w][k] != v {
				t.Fatalf("window %d key %d: got %d, want %d", w, k, got[w][k], v)
			}
		}
	}
	if rep.NetTxBytes == 0 {
		t.Fatal("multi-node run sent no socket traffic")
	}
}

func TestJoinCardinalities(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	flows, all := genFlows(rng, 2, 1, 300, 9)
	win, _ := window.NewTumbling(600)
	side := func(r *stream.Record) uint8 { return uint8(r.V1) }
	q := &core.Query{Name: "join", Codec: testCodec, Window: win, JoinSide: side}
	col := &core.Collector{}
	if _, err := Run(smallConfig(2, 1, 2), q, flows, col); err != nil {
		t.Fatal(err)
	}
	type wk struct{ w, k uint64 }
	oracleL, oracleR := map[wk]int{}, map[wk]int{}
	var wins []uint64
	for i := range all {
		r := all[i]
		wins = win.Assign(r.Time, wins[:0])
		for _, w := range wins {
			if r.V1 == 0 {
				oracleL[wk{w, r.Key}]++
			} else {
				oracleR[wk{w, r.Key}]++
			}
		}
	}
	for _, jr := range col.Joins() {
		k := wk{jr.Win, jr.Key}
		if jr.Left != oracleL[k] || jr.Right != oracleR[k] {
			t.Fatalf("join %v: (%d,%d), want (%d,%d)", k, jr.Left, jr.Right, oracleL[k], oracleR[k])
		}
	}
}

func TestRuntimeTaxDoesNotChangeResults(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	flows, all := genFlows(rng, 2, 1, 200, 11)
	win, _ := window.NewTumbling(400)
	q := &core.Query{Name: "tax", Codec: testCodec, Window: win, Agg: crdt.Count{}}
	cfg := smallConfig(2, 1, 1)
	cfg.RuntimeTaxLoops = 64
	sink := &core.CountingSink{}
	if _, err := Run(cfg, q, flows, sink); err != nil {
		t.Fatal(err)
	}
	oracle := oracleSum(all, win)
	want := 0
	for _, keys := range oracle {
		want += len(keys)
	}
	if int(sink.AggRows.Load()) != want {
		t.Fatalf("rows = %d, want %d", sink.AggRows.Load(), want)
	}
}

func TestQuickShapes(t *testing.T) {
	prop := func(seed int64, nn, pp, cc uint8) bool {
		nodes := 1 + int(nn%3)
		prods := 1 + int(pp%2)
		cons := 1 + int(cc%2)
		rng := rand.New(rand.NewSource(seed))
		flows, all := genFlows(rng, nodes, prods, 120, 13)
		win, _ := window.NewTumbling(300)
		q := &core.Query{Name: "quick", Codec: testCodec, Window: win, Agg: crdt.Sum{}}
		col := &core.Collector{}
		if _, err := Run(smallConfig(nodes, prods, cons), q, flows, col); err != nil {
			return false
		}
		oracle := oracleSum(all, win)
		rows := col.Aggs()
		total := 0
		for _, keys := range oracle {
			total += len(keys)
		}
		if len(rows) != total {
			return false
		}
		for _, r := range rows {
			if oracle[r.Win][r.Key] != r.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
