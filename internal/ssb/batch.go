// Columnar update path of the SSB (the batch form of UpdateAgg/AppendBag).
//
// The per-record fast path pays, for every record: a partition-map read lock
// (Owner), a window-cache probe, a hash-index chain walk, and an interface
// dispatch into the CRDT aggregate. Over a run of records that the window
// assigner proved share one window set (window.Runs), all of that except the
// index probe hoists out of the inner loop:
//
//   - the route (active leader set + generation) is looked up once per
//     (batch, window) via PartitionMap.RouteFor — no lock per record;
//   - records scatter into per-leader groups (order-preserving counting
//     sort), so each fragment table sees one dense column slice;
//   - the key column is pre-hashed in one tight loop and probes reuse the
//     stored hashes; consecutive equal keys skip the probe entirely;
//   - the aggregate's type dispatch resolves to a jump table on a uint8
//     kind instead of an interface call per record.
//
// Equivalence with the per-record path is exact: each fragment receives the
// same record subsequence in the same order, CRDT updates commute across
// keys, and the thread watermark after a batch equals the last (maximal)
// timestamp — so epoch chunk bytes, and therefore window results, are
// byte-identical (the differential tests in core and harness assert this).
package ssb

import (
	"math"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// aggKind enumerates the built-in aggregates the batch loop specializes on.
type aggKind uint8

const (
	aggGeneric aggKind = iota // unknown aggregate: per-record interface call
	aggCount
	aggSum
	aggMin
	aggMax
	aggAvg
)

// kindOfAgg resolves an aggregate to its specialized batch kind.
func kindOfAgg(a crdt.Aggregate) aggKind {
	switch a.(type) {
	case crdt.Count:
		return aggCount
	case crdt.Sum:
		return aggSum
	case crdt.Min:
		return aggMin
	case crdt.Max:
		return aggMax
	case crdt.Avg:
		return aggAvg
	default:
		return aggGeneric
	}
}

// batchScratch is the reusable storage of one thread's columnar update path.
type batchScratch struct {
	keys   []uint64 // gathered keys, grouped by leader node
	hashes []uint64 // mix64 of keys (index probe hashes)
	v0     []int64  // gathered V0 column
	times  []int64  // gathered Times column (generic aggregates only)
	v1     []int64  // gathered V1 column (generic aggregates only)
	node   []int32  // per-position leader node (scatter pass 1)
	off    []int32  // per-node fill cursor, indexed by node id
}

func (s *batchScratch) ensure(n, maxNodes int, generic bool) {
	if cap(s.keys) < n {
		s.keys = make([]uint64, n)
		s.hashes = make([]uint64, n)
		s.v0 = make([]int64, n)
		s.node = make([]int32, n)
	}
	s.keys = s.keys[:n]
	s.hashes = s.hashes[:n]
	s.v0 = s.v0[:n]
	s.node = s.node[:n]
	if generic {
		if cap(s.times) < n {
			s.times = make([]int64, n)
			s.v1 = make([]int64, n)
		}
		s.times = s.times[:n]
		s.v1 = s.v1[:n]
	}
	if len(s.off) < maxNodes {
		s.off = make([]int32, maxNodes)
	}
}

// UpdateAggBatch folds the live records of rb at selection positions
// [p0, p1) into window win — the batch form of UpdateAgg. The caller (the
// source task) guarantees the positions form one window-assignment run, so
// every record belongs to win.
func (ts *ThreadState) UpdateAggBatch(win uint64, rb *stream.RecordBatch, p0, p1 int) error {
	n := p1 - p0
	if n <= 0 {
		return nil
	}
	ts.updates += uint64(n)
	last := rb.Times[rb.LiveIndex(p1-1)]
	if last > ts.wm {
		ts.wm = last
	}

	active, gen := ts.be.pmap.RouteFor(win)
	c := ts.cacheEntry(win, gen)
	kind := ts.aggKind
	generic := kind == aggGeneric
	na := len(active)

	if na == 1 && rb.Sel == nil && !generic {
		// Single leader, no selection: update straight off the batch columns.
		tbl := c.tables[active[0]]
		if tbl == nil {
			tbl = ts.tableSlow(c, win, gen, active[0])
		}
		s := &ts.batch
		s.ensure(n, len(c.tables), false)
		hashes := s.hashes[:n]
		keys := rb.Keys[p0:p1]
		for i, k := range keys {
			hashes[i] = mix64(k)
		}
		return tbl.updateAggColumns(kind, keys, hashes, rb.V0[p0:p1], nil, nil)
	}

	s := &ts.batch
	s.ensure(n, len(c.tables), generic)

	// Pass 1: route each key and count per leader. The counting sort keeps
	// each leader's records in batch order, so fragment logs grow exactly as
	// the per-record path would grow them.
	for i := range s.off[:len(c.tables)] {
		s.off[i] = 0
	}
	sel := rb.Sel
	bKeys := rb.Keys
	for i := 0; i < n; i++ {
		p := p0 + i
		if sel != nil {
			p = int(sel[p0+i])
		}
		node := int32(active[partitionIndex(PartitionHash(bKeys[p]), na)])
		s.node[i] = node
		s.off[node]++
	}
	// Prefix sums over the active set only.
	var sum int32
	for _, node := range active {
		cnt := s.off[node]
		s.off[node] = sum
		sum += cnt
	}
	// Pass 2: scatter the columns into leader-grouped order.
	for i := 0; i < n; i++ {
		p := p0 + i
		if sel != nil {
			p = int(sel[p0+i])
		}
		node := s.node[i]
		at := s.off[node]
		s.off[node] = at + 1
		s.keys[at] = bKeys[p]
		s.v0[at] = rb.V0[p]
		if generic {
			s.times[at] = rb.Times[p]
			s.v1[at] = rb.V1[p]
		}
	}
	// Pre-hash the gathered key column in one tight loop.
	for i, k := range s.keys[:n] {
		s.hashes[i] = mix64(k)
	}
	// Per-leader dense update. s.off[node] now holds each group's end.
	var start int32
	for _, node := range active {
		end := s.off[node]
		if end == start {
			continue
		}
		tbl := c.tables[node]
		if tbl == nil {
			tbl = ts.tableSlow(c, win, gen, node)
		}
		var gt, gv1 []int64
		if generic {
			gt, gv1 = s.times[start:end], s.v1[start:end]
		}
		if err := tbl.updateAggColumns(kind, s.keys[start:end], s.hashes[start:end], s.v0[start:end], gt, gv1); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// updateAggColumns is the per-fragment inner loop: fold parallel key/value
// columns into the aggregate table. hashes[i] must equal mix64(keys[i]);
// times/v1 are only consulted for generic aggregates. Consecutive equal keys
// reuse the previous entry's offset without re-probing — the skew fast path
// (a Zipf-heavy column is full of same-key runs).
func (t *Table) updateAggColumns(kind aggKind, keys, hashes []uint64, v0, times, v1 []int64) error {
	if t.agg == nil {
		return ErrTableKind
	}
	size := t.agg.Size()
	t.idx.reserve(len(keys)) // worst case every key is new: at most one rehash
	var prevKey uint64
	prevOff := int32(-1)
	for i, key := range keys {
		var off int32
		if prevOff >= 0 && key == prevKey {
			off = prevOff
		} else {
			slot, found := t.idx.lookupOrReserveHashed(key, hashes[i])
			if found {
				off = *slot
			} else {
				o, value, err := t.appendBlank(key, noPrev, size)
				if err != nil {
					return err
				}
				// appendBlank zero-fills, which already is the identity of
				// count/sum/avg; only the extremes and generic aggregates
				// need an explicit init.
				switch kind {
				case aggMin:
					putU64(value, uint64(math.MaxInt64))
				case aggMax:
					putU64(value, 1<<63) // MinInt64 bit pattern
				case aggGeneric:
					t.agg.Init(value)
				}
				*slot = o
				off = o
			}
			prevKey, prevOff = key, off
		}
		st := t.log[int(off)+entryHeaderSize : int(off)+entryHeaderSize+size]
		switch kind {
		case aggCount:
			putU64(st, getU64(st)+1)
		case aggSum:
			putU64(st, uint64(int64(getU64(st))+v0[i]))
		case aggMin:
			if v := v0[i]; v < int64(getU64(st)) {
				putU64(st, uint64(v))
			}
		case aggMax:
			if v := v0[i]; v > int64(getU64(st)) {
				putU64(st, uint64(v))
			}
		case aggAvg:
			putU64(st, uint64(int64(getU64(st))+v0[i]))
			putU64(st[8:], getU64(st[8:])+1)
		default:
			rec := stream.Record{Key: key, Time: times[i], V0: v0[i], V1: v1[i]}
			t.agg.Update(st, &rec)
		}
	}
	return nil
}

// AppendBagBatch appends the live records of rb at selection positions
// [p0, p1) to window win's bags — the batch form of AppendBag. sides[j]
// holds the join side of record index j (the full batch index domain, not
// the selection domain). Routing and table resolution are hoisted per run;
// the append itself stays per element because every element grows the log.
func (ts *ThreadState) AppendBagBatch(win uint64, rb *stream.RecordBatch, p0, p1 int, sides []uint8) error {
	n := p1 - p0
	if n <= 0 {
		return nil
	}
	ts.updates += uint64(n)
	last := rb.Times[rb.LiveIndex(p1-1)]
	if last > ts.wm {
		ts.wm = last
	}
	active, gen := ts.be.pmap.RouteFor(win)
	c := ts.cacheEntry(win, gen)
	na := len(active)
	sel := rb.Sel
	var e crdt.BagElem
	for i := p0; i < p1; i++ {
		p := i
		if sel != nil {
			p = int(sel[i])
		}
		key := rb.Keys[p]
		node := active[partitionIndex(PartitionHash(key), na)]
		tbl := c.tables[node]
		if tbl == nil {
			tbl = ts.tableSlow(c, win, gen, node)
		}
		e.Time = rb.Times[p]
		e.Val = rb.V0[p]
		e.Side = sides[p]
		if err := tbl.AppendBag(key, &e); err != nil {
			return err
		}
	}
	return nil
}
