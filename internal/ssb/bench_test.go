package ssb

import (
	"math/rand"
	"testing"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// Micro-benchmarks for the SSB hot paths: the per-record RMW update (the
// engine's common case, §7.1.2), the bag append (join state), and the
// leader-side delta merge (§7.2.2).

func BenchmarkUpdateAgg(b *testing.B) {
	for _, keys := range []int{1 << 10, 1 << 16} {
		b.Run(benchName("keys", keys), func(b *testing.B) {
			tbl := NewAggTable(crdt.Sum{})
			rng := rand.New(rand.NewSource(1))
			recs := make([]stream.Record, 1<<12)
			for i := range recs {
				recs[i] = stream.Record{Key: uint64(rng.Intn(keys)), V0: int64(i)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tbl.UpdateAgg(&recs[i&(len(recs)-1)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAppendBag(b *testing.B) {
	tbl := NewBagTable()
	e := crdt.BagElem{Time: 1, Val: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.AppendBag(uint64(i&1023), &e); err != nil {
			b.Fatal(err)
		}
		if tbl.LogBytes() > 64<<20 {
			b.StopTimer()
			tbl.Reset()
			b.StartTimer()
		}
	}
}

func BenchmarkMergeDelta(b *testing.B) {
	// One pre-serialized 16 KiB delta region merged repeatedly: the
	// leader-side cost per epoch chunk.
	src := NewAggTable(crdt.Sum{})
	rng := rand.New(rand.NewSource(2))
	for src.LogBytes() < 16<<10 {
		r := stream.Record{Key: uint64(rng.Intn(1 << 20)), V0: 1}
		if err := src.UpdateAgg(&r); err != nil {
			b.Fatal(err)
		}
	}
	var region []byte
	if err := src.SerializeDelta(1<<20, func(r []byte) error {
		region = append([]byte(nil), r...)
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	dst := NewAggTable(crdt.Sum{})
	b.SetBytes(int64(len(region)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.MergeDelta(region); err != nil {
			b.Fatal(err)
		}
		if dst.LogBytes() > 64<<20 {
			b.StopTimer()
			dst.Reset()
			b.StartTimer()
		}
	}
}

func BenchmarkIndexLookupOrReserve(b *testing.B) {
	ix := newIndex()
	for i := uint64(0); i < 1<<16; i++ {
		ix.set(i, int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.lookupOrReserve(uint64(i & (1<<16 - 1)))
	}
}

func benchName(k string, v int) string {
	switch {
	case v >= 1<<20:
		return k + "=1M"
	case v >= 1<<16:
		return k + "=64K"
	default:
		return k + "=1K"
	}
}
