package ssb

import (
	"encoding/binary"
	"testing"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// recPublisher records every publication the backend emits, copying the
// snapshot (the contract: Log aliases merge memory and is only valid during
// the call).
type recPublisher struct {
	snaps []StateSnapshot
}

func (p *recPublisher) PublishState(s *StateSnapshot) {
	c := *s
	c.Log = append([]byte(nil), s.Log...)
	p.snaps = append(p.snaps, c)
}

func pubBackend(t *testing.T, minDelta int) (*Backend, *recPublisher) {
	t.Helper()
	b, err := New(Config{
		Node: 0, Nodes: 1, ThreadsPerNode: 2,
		Agg: crdt.Sum{}, WindowEnd: fixedWindowEnd,
	}, make([]Sender, 1))
	if err != nil {
		t.Fatal(err)
	}
	p := &recPublisher{}
	b.SetStatePublisher(p, minDelta)
	return b, p
}

func pubChunk(t *testing.T, win, epoch uint64, thread int, key uint64, v int64) *Chunk {
	t.Helper()
	return &Chunk{
		Window: win, Epoch: epoch, Watermark: stream.NoWatermark,
		Thread: thread, Partition: 0, Kind: ChunkData,
		Payload: deltaPayload(t, key, v),
	}
}

// TestStatePublishDirtyAndSeal drives the publication hooks end to end:
// merged deltas mark windows dirty, PublishDirty publishes them live with
// the byte threshold throttling republication, and TriggerReady publishes a
// final sealed snapshot whose log decodes to the merged state.
func TestStatePublishDirtyAndSeal(t *testing.T) {
	b, p := pubBackend(t, 1)

	if err := b.HandleChunk(pubChunk(t, 0, 1, 0, 7, 5)); err != nil {
		t.Fatal(err)
	}
	b.PublishDirty()
	if len(p.snaps) != 1 {
		t.Fatalf("publications after first merge: %d, want 1", len(p.snaps))
	}
	s := p.snaps[0]
	if s.Window != 0 || s.Sealed || s.AggKind != StateAggSum || s.Stride != 24 {
		t.Fatalf("live snapshot %+v", s)
	}
	if key := binary.LittleEndian.Uint64(s.Log[0:]); key != 7 {
		t.Fatalf("log key = %d, want 7", key)
	}
	if v := binary.LittleEndian.Uint64(s.Log[16:]); v != 5 {
		t.Fatalf("log state = %d, want 5", v)
	}

	// Nothing new merged: PublishDirty is a no-op.
	b.PublishDirty()
	if len(p.snaps) != 1 {
		t.Fatalf("republication with no dirty bytes: %d snaps", len(p.snaps))
	}

	// Seal: both threads pass the window end; the trigger publishes the
	// final sealed snapshot before recycling the table.
	if err := b.HandleChunk(pubChunk(t, 0, 2, 0, 7, 2)); err != nil {
		t.Fatal(err)
	}
	for th := 0; th < 2; th++ {
		if err := b.HandleChunk(&Chunk{
			Epoch: 3, Watermark: 10_000, Thread: th, Partition: 0, Kind: ChunkHeartbeat,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	n := b.TriggerReady(func(win, key uint64, v int64) { got = append(got, v) }, nil)
	if n != 1 || len(got) != 1 || got[0] != 7 {
		t.Fatalf("trigger fired %d windows, emitted %v; want one window, sum 7", n, got)
	}
	last := p.snaps[len(p.snaps)-1]
	if !last.Sealed || last.Window != 0 {
		t.Fatalf("last publication not the sealed window 0: %+v", last)
	}
	if v := binary.LittleEndian.Uint64(last.Log[16:]); v != 7 {
		t.Fatalf("sealed log state = %d, want 7", v)
	}

	// The sealed window left the dirty tracking; PublishDirty stays quiet.
	count := len(p.snaps)
	b.PublishDirty()
	if len(p.snaps) != count {
		t.Fatal("PublishDirty republished a sealed window")
	}
}

// TestStatePublishThrottle checks the minDeltaBytes throttle: below the
// threshold a window republishes only on its first PublishDirty; crossing it
// republishes again.
func TestStatePublishThrottle(t *testing.T) {
	b, p := pubBackend(t, 1<<20) // 1 MiB threshold
	if err := b.HandleChunk(pubChunk(t, 0, 1, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	b.PublishDirty()
	if len(p.snaps) != 1 {
		t.Fatalf("first publish: %d snaps, want 1 (first publication bypasses the throttle)", len(p.snaps))
	}
	if err := b.HandleChunk(pubChunk(t, 0, 2, 0, 2, 1)); err != nil {
		t.Fatal(err)
	}
	b.PublishDirty()
	if len(p.snaps) != 1 {
		t.Fatalf("sub-threshold republish happened: %d snaps", len(p.snaps))
	}
}

// TestStatePublisherDisarmed asserts the hooks cost nothing when no
// publisher is attached.
func TestStatePublisherDisarmed(t *testing.T) {
	b, err := New(Config{
		Node: 0, Nodes: 1, ThreadsPerNode: 1,
		Agg: crdt.Sum{}, WindowEnd: fixedWindowEnd,
	}, make([]Sender, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.HandleChunk(pubChunk(t, 0, 1, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	b.PublishDirty() // must not panic with nil maps
	if b.stateDirty != nil {
		t.Fatal("dirty tracking allocated without a publisher")
	}
}
