package ssb

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// partitionHashMultiplier is the odd multiply-shift constant (2^64/φ, the
// golden ratio, i.e. Fibonacci hashing): multiplying a 64-bit key by it
// spreads consecutive and strided key populations evenly across the high
// output bits — the key-distribution assumption behind the paper's YSB
// workload (§8.2.1), where keys are dense small integers. A plain modulo
// (and even a modulo of a mixed key) concentrates strided key sets onto a
// few partitions; multiply-shift provably 2-universal up to the shift.
const partitionHashMultiplier = 0x9E3779B97F4A7C15

// PartitionHash is the multiply-shift hash the partition map routes keys
// with (§7.1.2: the SSB partitions its key space across leader executors).
// Only the high bits carry the mixing quality, so consumers must reduce the
// hash with a shift or high-bits range reduction, never with a modulo.
func PartitionHash(key uint64) uint64 {
	return key * partitionHashMultiplier
}

// partitionIndex reduces a partition hash onto [0, n) using the high 64 bits
// of the 128-bit product (Lemire's multiply-shift range reduction). Unlike
// `hash % n` it uses the well-mixed high bits and costs one multiply.
func partitionIndex(hash uint64, n int) int {
	hi, _ := bits.Mul64(hash, uint64(n))
	return int(hi)
}

// Generation is one membership epoch of the partition map: the set of active
// leader executors, effective for every window bucket at or above
// FromWindow. Reconfigurations never remap windows below FromWindow, so a
// (window, key) pair has exactly one leader for the lifetime of the run —
// this is what lets workers join and leave with zero state migration
// (§7.2, §8): pre-cutover windows drain at their old leaders through the
// ordinary late-merge path while new windows route to the new membership.
type Generation struct {
	// Gen is the generation number; installs increment it by one.
	Gen uint64
	// FromWindow is the cutover: windows >= FromWindow route with this
	// generation's Active set.
	FromWindow uint64
	// Active lists the active leader node ids, sorted ascending.
	Active []int
}

// Contains reports whether node is active in this generation.
func (g *Generation) Contains(node int) bool {
	i := sort.SearchInts(g.Active, node)
	return i < len(g.Active) && g.Active[i] == node
}

// PartitionMap is the generation-stamped key-routing table of the SSB: an
// append-only sequence of Generations ordered by cutover window. It is the
// control-plane state the paper's elasticity argument rests on (§7.2, §8 —
// "state lives in the shared backend, so reconfiguration does not move
// it"): the in-process reproduction shares one map object per deployment;
// an RDMA deployment would replicate it with one WRITE per node and the
// same epoch-aligned activation rule.
//
// All methods are safe for concurrent use. The per-record read path
// (Owner) takes a read lock; the current generation number is additionally
// maintained in an atomic so hot paths can detect reconfigurations with a
// single load.
type PartitionMap struct {
	mu   sync.RWMutex
	gens []Generation
	cur  atomic.Uint64
}

// NewPartitionMap builds a map with a single generation 0 over the given
// active node set, effective from window 0.
func NewPartitionMap(active []int) *PartitionMap {
	m := &PartitionMap{}
	a := append([]int(nil), active...)
	sort.Ints(a)
	m.gens = []Generation{{Gen: 0, FromWindow: 0, Active: a}}
	return m
}

// StaticPartitionMap builds the map of a fixed deployment: nodes 0..n-1,
// one generation, never reconfigured.
func StaticPartitionMap(n int) *PartitionMap {
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	return NewPartitionMap(active)
}

// Errors surfaced by partition-map installation.
var (
	// ErrGenOrder rejects an install whose generation number or cutover
	// window regresses — generations are strictly ordered so every node
	// agrees on the routing history.
	ErrGenOrder = fmt.Errorf("ssb: partition map generations must advance")
	// ErrEmptyGeneration rejects an install with no active nodes.
	ErrEmptyGeneration = fmt.Errorf("ssb: partition map generation has no active nodes")
)

// Install appends a new generation. The generation number must be exactly
// one above the current one and the cutover window must be at or above the
// previous cutover (several membership changes may share one cutover). The
// caller is responsible for the epoch-aligned activation barrier: no sender
// may still hold unflushed fragments for windows >= g.FromWindow routed
// under the previous generation (see core.Controller.Quiesced).
func (m *PartitionMap) Install(g Generation) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	last := &m.gens[len(m.gens)-1]
	if g.Gen != last.Gen+1 || g.FromWindow < last.FromWindow {
		return fmt.Errorf("%w: install gen %d from window %d after gen %d from window %d",
			ErrGenOrder, g.Gen, g.FromWindow, last.Gen, last.FromWindow)
	}
	if len(g.Active) == 0 {
		return ErrEmptyGeneration
	}
	a := append([]int(nil), g.Active...)
	sort.Ints(a)
	m.gens = append(m.gens, Generation{Gen: g.Gen, FromWindow: g.FromWindow, Active: a})
	m.cur.Store(g.Gen)
	return nil
}

// CurrentGen returns the latest installed generation number with a single
// atomic load — the hot-path check source threads use to notice a
// reconfiguration.
func (m *PartitionMap) CurrentGen() uint64 { return m.cur.Load() }

// Current returns a copy of the latest generation.
func (m *PartitionMap) Current() Generation {
	m.mu.RLock()
	defer m.mu.RUnlock()
	g := m.gens[len(m.gens)-1]
	return Generation{Gen: g.Gen, FromWindow: g.FromWindow, Active: append([]int(nil), g.Active...)}
}

// genFor returns the generation governing window win: the last generation
// whose cutover is at or below win. Callers must hold m.mu.
func (m *PartitionMap) genFor(win uint64) *Generation {
	// Linear scan from the tail: maps hold a handful of generations and the
	// common case is the latest one.
	for i := len(m.gens) - 1; i > 0; i-- {
		if m.gens[i].FromWindow <= win {
			return &m.gens[i]
		}
	}
	return &m.gens[0]
}

// GenFor returns the generation number governing window win.
func (m *PartitionMap) GenFor(win uint64) uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.genFor(win).Gen
}

// Owner routes (win, key) to its leader node id under the generation
// governing win, and reports that generation. Because generations are
// immutable once installed and windows below a cutover never remap, the
// answer for a given (win, key) is stable for the whole run — the property
// that makes merge placement, and therefore window results, independent of
// when nodes joined or left.
func (m *PartitionMap) Owner(win, key uint64) (node int, gen uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	g := m.genFor(win)
	return g.Active[partitionIndex(PartitionHash(key), len(g.Active))], g.Gen
}

// RouteFor returns the active leader set and generation number governing
// window win — the batch form of Owner. Where Owner pays a read lock per
// record, RouteFor pays one per (batch, window) run: the caller routes each
// key itself with Active[partitionIndex(PartitionHash(key), len(Active))].
// The returned slice aliases the generation's storage; generations are
// immutable once installed, so it is safe to read but must never be
// modified.
func (m *PartitionMap) RouteFor(win uint64) (active []int, gen uint64) {
	m.mu.RLock()
	g := m.genFor(win)
	active, gen = g.Active, g.Gen
	m.mu.RUnlock()
	return active, gen
}

// ActiveIn reports whether node is active in the generation governing win.
func (m *PartitionMap) ActiveIn(win uint64, node int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.genFor(win).Contains(node)
}

// Snapshot returns a copy of every installed generation, oldest first.
func (m *PartitionMap) Snapshot() []Generation {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Generation, len(m.gens))
	for i, g := range m.gens {
		out[i] = Generation{Gen: g.Gen, FromWindow: g.FromWindow, Active: append([]int(nil), g.Active...)}
	}
	return out
}
