package ssb

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// directSender delivers chunks straight into the destination backend,
// copying the payload like a real transport would serialize it.
type directSender struct{ dst *Backend }

func (s *directSender) Send(c *Chunk) error {
	cc := *c
	cc.Payload = append([]byte(nil), c.Payload...)
	return s.dst.HandleChunk(&cc)
}

// cluster wires n backends with direct senders.
func newCluster(t *testing.T, n, threads int, agg crdt.Aggregate, winEnd func(uint64) stream.Watermark) []*Backend {
	t.Helper()
	backends := make([]*Backend, n)
	senders := make([][]Sender, n)
	for i := range senders {
		senders[i] = make([]Sender, n)
	}
	for i := 0; i < n; i++ {
		var err error
		backends[i], err = New(Config{
			Node:           i,
			Nodes:          n,
			ThreadsPerNode: threads,
			Agg:            agg,
			WindowEnd:      winEnd,
			EpochBytes:     1 << 10,
		}, senders[i])
		if err != nil {
			t.Fatalf("New backend %d: %v", i, err)
		}
	}
	// Patch senders now that all backends exist.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				senders[i][j] = &directSender{dst: backends[j]}
			}
		}
	}
	return backends
}

func fixedWindowEnd(win uint64) stream.Watermark { return stream.Watermark(win+1) * 1000 }

func TestChunkEncodeDecode(t *testing.T) {
	prop := func(win, epoch, gen uint64, wm int64, thread, part uint16, payload []byte) bool {
		in := Chunk{
			Window: win, Epoch: epoch, Watermark: wm, Gen: gen,
			Thread: int(thread), Partition: int(part),
			Kind: ChunkData, Payload: payload,
		}
		buf := make([]byte, in.EncodedSize())
		if in.Encode(buf) != len(buf) {
			return false
		}
		out, err := DecodeChunk(buf)
		if err != nil {
			return false
		}
		if out.Window != in.Window || out.Epoch != in.Epoch || out.Watermark != in.Watermark ||
			out.Gen != in.Gen || out.Thread != in.Thread || out.Partition != in.Partition ||
			out.Kind != in.Kind {
			return false
		}
		if len(out.Payload) != len(in.Payload) {
			return false
		}
		for i := range out.Payload {
			if out.Payload[i] != in.Payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeChunkErrors(t *testing.T) {
	if _, err := DecodeChunk(make([]byte, 5)); !errors.Is(err, ErrChunkFormat) {
		t.Fatalf("short chunk err = %v", err)
	}
	buf := make([]byte, ChunkHeaderSize)
	buf[40] = 99 // invalid kind
	if _, err := DecodeChunk(buf); !errors.Is(err, ErrChunkFormat) {
		t.Fatalf("bad kind err = %v", err)
	}
	buf[40] = byte(ChunkData)
	putU32(buf[44:], 100) // payload overflows
	if _, err := DecodeChunk(buf); !errors.Is(err, ErrChunkFormat) {
		t.Fatalf("overflow err = %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	we := fixedWindowEnd
	if _, err := New(Config{Node: 0, Nodes: 0, ThreadsPerNode: 1, WindowEnd: we}, nil); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := New(Config{Node: 2, Nodes: 2, ThreadsPerNode: 1, WindowEnd: we}, make([]Sender, 2)); err == nil {
		t.Fatal("node out of range accepted")
	}
	if _, err := New(Config{Node: 0, Nodes: 1, ThreadsPerNode: 0, WindowEnd: we}, make([]Sender, 1)); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := New(Config{Node: 0, Nodes: 1, ThreadsPerNode: 1}, make([]Sender, 1)); err == nil {
		t.Fatal("missing WindowEnd accepted")
	}
	if _, err := New(Config{Node: 0, Nodes: 2, ThreadsPerNode: 1, WindowEnd: we}, make([]Sender, 1)); err == nil {
		t.Fatal("wrong sender count accepted")
	}
}

func TestSingleNodeAggTrigger(t *testing.T) {
	bs := newCluster(t, 1, 1, crdt.Sum{}, fixedWindowEnd)
	ts := bs[0].Thread(0)
	for i := 0; i < 10; i++ {
		r := stream.Record{Key: uint64(i % 2), Time: int64(i * 10), V0: 1}
		if err := ts.UpdateAgg(0, &r); err != nil {
			t.Fatal(err)
		}
	}
	// Watermark (90) does not cover window end (1000): no trigger.
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := bs[0].TriggerReady(nil, nil); n != 0 {
		t.Fatalf("premature trigger of %d windows", n)
	}
	if err := ts.FinishStream(); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]int64{}
	n := bs[0].TriggerReady(func(win, key uint64, res int64) {
		if win != 0 {
			t.Fatalf("unexpected window %d", win)
		}
		got[key] = res
	}, nil)
	if n != 1 {
		t.Fatalf("triggered %d windows", n)
	}
	if got[0] != 5 || got[1] != 5 {
		t.Fatalf("results = %v", got)
	}
	if bs[0].PendingWindows() != 0 {
		t.Fatal("window not discarded after trigger")
	}
}

func TestTriggerWaitsForAllThreads(t *testing.T) {
	// P1: a window must not fire while any thread in the cluster may still
	// contribute records with smaller timestamps.
	bs := newCluster(t, 2, 2, crdt.Count{}, fixedWindowEnd)
	threads := []*ThreadState{
		bs[0].Thread(0), bs[0].Thread(1), bs[1].Thread(0), bs[1].Thread(1),
	}
	for _, ts := range threads[:3] {
		r := stream.Record{Key: 1, Time: 10}
		if err := ts.UpdateAgg(0, &r); err != nil {
			t.Fatal(err)
		}
		if err := ts.FinishStream(); err != nil {
			t.Fatal(err)
		}
	}
	// Thread 3 lags: nothing may trigger anywhere.
	for i, b := range bs {
		if n := b.TriggerReady(nil, nil); n != 0 {
			t.Fatalf("backend %d triggered with a lagging thread", i)
		}
	}
	if err := threads[3].FinishStream(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bs {
		b.TriggerReady(func(_, _ uint64, res int64) { total += int(res) }, nil)
	}
	if total != 3 {
		t.Fatalf("total count = %d, want 3", total)
	}
}

func TestKeyRoutedToOneLeader(t *testing.T) {
	// The same key updated on every node must surface exactly once, at its
	// partition leader, with the globally merged value.
	const nodes = 4
	bs := newCluster(t, nodes, 1, crdt.Sum{}, fixedWindowEnd)
	const key = 1234567
	for _, b := range bs {
		ts := b.Thread(0)
		r := stream.Record{Key: key, Time: 5, V0: 10}
		if err := ts.UpdateAgg(0, &r); err != nil {
			t.Fatal(err)
		}
		if err := ts.FinishStream(); err != nil {
			t.Fatal(err)
		}
	}
	leader := bs[0].Partition(key)
	emitted := 0
	for i, b := range bs {
		b.TriggerReady(func(_, k uint64, res int64) {
			emitted++
			if i != leader {
				t.Fatalf("key emitted at node %d, leader is %d", i, leader)
			}
			if k != key || res != 10*nodes {
				t.Fatalf("emitted k=%d res=%d", k, res)
			}
		}, nil)
	}
	if emitted != 1 {
		t.Fatalf("key emitted %d times", emitted)
	}
}

func TestDistributedSumMatchesOracle(t *testing.T) {
	// P2: distributed execution with random routing of records to threads
	// equals a sequential fold.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(4)
		threadsPer := 1 + rng.Intn(2)
		bs := newCluster(t, nodes, threadsPer, crdt.Sum{}, fixedWindowEnd)
		var threads []*ThreadState
		for _, b := range bs {
			for i := 0; i < threadsPer; i++ {
				threads = append(threads, b.Thread(i))
			}
		}
		oracle := map[uint64]map[uint64]int64{} // win -> key -> sum
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			win := uint64(rng.Intn(3))
			r := stream.Record{
				Key:  uint64(rng.Intn(50)),
				Time: int64(rng.Intn(1000)) + int64(win)*1000,
				V0:   rng.Int63n(100) - 50,
			}
			ts := threads[rng.Intn(len(threads))]
			if err := ts.UpdateAgg(win, &r); err != nil {
				return false
			}
			// Random mid-stream epoch flushes.
			if rng.Intn(100) == 0 {
				if err := ts.Flush(); err != nil {
					return false
				}
			}
			if oracle[win] == nil {
				oracle[win] = map[uint64]int64{}
			}
			oracle[win][r.Key] += r.V0
		}
		for _, ts := range threads {
			if err := ts.FinishStream(); err != nil {
				return false
			}
		}
		got := map[uint64]map[uint64]int64{}
		for _, b := range bs {
			b.TriggerReady(func(win, key uint64, res int64) {
				if got[win] == nil {
					got[win] = map[uint64]int64{}
				}
				if _, dup := got[win][key]; dup {
					t.Errorf("duplicate emission win=%d key=%d", win, key)
				}
				got[win][key] = res
			}, nil)
		}
		if len(got) != len(oracle) {
			return false
		}
		for win, keys := range oracle {
			if len(got[win]) != len(keys) {
				return false
			}
			for k, v := range keys {
				if got[win][k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedBagsMatchOracle(t *testing.T) {
	const nodes = 3
	bs := newCluster(t, nodes, 1, nil, fixedWindowEnd)
	rng := rand.New(rand.NewSource(11))
	oracle := map[uint64][]int64{} // key -> sorted vals
	var threads []*ThreadState
	for _, b := range bs {
		threads = append(threads, b.Thread(0))
	}
	for i := 0; i < 500; i++ {
		key := uint64(rng.Intn(10))
		e := crdt.BagElem{Time: int64(i), Val: rng.Int63n(1000), Side: uint8(i % 2)}
		ts := threads[rng.Intn(nodes)]
		if err := ts.AppendBag(0, key, &e); err != nil {
			t.Fatal(err)
		}
		oracle[key] = append(oracle[key], e.Val)
	}
	for _, ts := range threads {
		if err := ts.FinishStream(); err != nil {
			t.Fatal(err)
		}
	}
	got := map[uint64][]int64{}
	for _, b := range bs {
		b.TriggerReady(nil, func(win, key uint64, elems []crdt.BagElem) {
			for _, e := range elems {
				got[key] = append(got[key], e.Val)
			}
		})
	}
	if len(got) != len(oracle) {
		t.Fatalf("got %d keys, want %d", len(got), len(oracle))
	}
	for k, want := range oracle {
		g := got[k]
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(g) != len(want) {
			t.Fatalf("key %d: %d elems, want %d", k, len(g), len(want))
		}
		for i := range g {
			if g[i] != want[i] {
				t.Fatalf("key %d elem %d = %d, want %d", k, i, g[i], want[i])
			}
		}
	}
}

func TestEpochRegressionRejected(t *testing.T) {
	bs := newCluster(t, 1, 1, crdt.Sum{}, fixedWindowEnd)
	c := &Chunk{Epoch: 5, Thread: 0, Kind: ChunkHeartbeat, Watermark: 1}
	if err := bs[0].HandleChunk(c); err != nil {
		t.Fatal(err)
	}
	c.Epoch = 3
	if err := bs[0].HandleChunk(c); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v, want ErrStaleEpoch", err)
	}
}

func TestLateChunkRejected(t *testing.T) {
	bs := newCluster(t, 1, 1, crdt.Sum{}, fixedWindowEnd)
	ts := bs[0].Thread(0)
	r := stream.Record{Key: 1, Time: 10, V0: 1}
	_ = ts.UpdateAgg(0, &r)
	_ = ts.FinishStream()
	if n := bs[0].TriggerReady(nil, nil); n != 1 {
		t.Fatalf("triggered %d", n)
	}
	// A data chunk for the triggered window violates the protocol.
	tbl := NewAggTable(crdt.Sum{})
	_ = tbl.UpdateAgg(&r)
	var payload []byte
	_ = tbl.SerializeDelta(1024, func(region []byte) error {
		payload = append([]byte(nil), region...)
		return nil
	})
	late := &Chunk{Window: 0, Epoch: 99, Thread: 0, Partition: 0, Kind: ChunkData, Watermark: math.MaxInt64, Payload: payload}
	if err := bs[0].HandleChunk(late); !errors.Is(err, ErrLateChunk) {
		t.Fatalf("err = %v, want ErrLateChunk", err)
	}
}

func TestWrongLeaderRejected(t *testing.T) {
	bs := newCluster(t, 2, 1, crdt.Sum{}, fixedWindowEnd)
	c := &Chunk{Window: 0, Epoch: 1, Thread: 0, Partition: 1, Kind: ChunkData}
	if err := bs[0].HandleChunk(c); !errors.Is(err, ErrBadDestination) {
		t.Fatalf("err = %v, want ErrBadDestination", err)
	}
}

func TestIngestEpochBoundary(t *testing.T) {
	bs := newCluster(t, 1, 1, crdt.Sum{}, fixedWindowEnd)
	ts := bs[0].Thread(0)
	if ts.Ingest(512) {
		t.Fatal("boundary reported early")
	}
	if !ts.Ingest(512) {
		t.Fatal("boundary missed at EpochBytes")
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if ts.Ingest(100) {
		t.Fatal("counter not reset by Flush")
	}
}

func TestHelperFragmentsInvalidatedAfterFlush(t *testing.T) {
	bs := newCluster(t, 2, 1, crdt.Sum{}, fixedWindowEnd)
	ts := bs[0].Thread(0)
	r := stream.Record{Key: 42, Time: 1, V0: 7}
	_ = ts.UpdateAgg(0, &r)
	if ts.StateBytes() == 0 {
		t.Fatal("no state before flush")
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if ts.StateBytes() != 0 {
		t.Fatal("fragments not invalidated after transfer")
	}
	st := ts.Stats()
	if st.Flushes != 1 || st.Updates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
