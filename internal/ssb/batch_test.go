package ssb

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// xorTimes is a deliberately unregistered aggregate: kindOfAgg resolves it
// to aggGeneric, forcing the batch loop down the per-record interface-call
// branch (which also gathers the Times/V1 columns).
type xorTimes struct{}

func (xorTimes) Name() string { return "xor-times" }
func (xorTimes) Size() int    { return 8 }
func (xorTimes) Init(dst []byte) {
	putU64(dst, 0)
}
func (xorTimes) Update(state []byte, rec *stream.Record) {
	putU64(state, getU64(state)^uint64(rec.Time)^uint64(rec.V0)^uint64(rec.V1))
}
func (xorTimes) Merge(dst, src []byte) {
	putU64(dst, getU64(dst)^getU64(src))
}
func (xorTimes) Result(state []byte) int64 { return int64(getU64(state)) }

// batchClusterRun feeds the same record stream twice — once per record via
// UpdateAgg, once columnar via UpdateAggBatch — into two identical clusters
// and returns both result maps. Each batch holds records of one window (the
// window-run contract the source task guarantees). withSel interleaves dead
// decoy records and selects around them.
func batchClusterRun(t *testing.T, nodes, threads int, agg crdt.Aggregate, seed int64, withSel bool) (perRec, batch map[uint64]map[uint64]int64) {
	t.Helper()
	recCluster := newCluster(t, nodes, threads, agg, fixedWindowEnd)
	batCluster := newCluster(t, nodes, threads, agg, fixedWindowEnd)

	var recThreads, batThreads []*ThreadState
	for i := range recCluster {
		for j := 0; j < threads; j++ {
			recThreads = append(recThreads, recCluster[i].Thread(j))
			batThreads = append(batThreads, batCluster[i].Thread(j))
		}
	}

	rng := rand.New(rand.NewSource(seed))
	rb := stream.NewRecordBatch(64)
	for round := 0; round < 60; round++ {
		win := uint64(rng.Intn(3))
		th := rng.Intn(len(recThreads))
		rb.Reset(1 + rng.Intn(rb.Cap()))
		var sel []int32
		if withSel {
			sel = rb.UseSel()
		}
		// Zipf-ish key draws produce consecutive equal keys, covering the
		// prevOff re-probe skip in updateAggColumns.
		key := uint64(rng.Intn(8))
		for rb.Free() > 0 {
			if rng.Intn(3) != 0 {
				key = uint64(rng.Intn(8))
			}
			r := stream.Record{
				Key:  key,
				Time: int64(win)*1000 + int64(rng.Intn(1000)),
				V0:   rng.Int63n(200) - 100,
				V1:   rng.Int63n(4),
			}
			live := !withSel || rng.Intn(4) != 0
			if live && sel != nil {
				sel = append(sel, int32(rb.Len()))
			}
			rb.Append(&r)
			if live {
				var rr stream.Record
				rb.Get(rb.Len()-1, &rr)
				if err := recThreads[th].UpdateAgg(win, &rr); err != nil {
					t.Fatalf("UpdateAgg: %v", err)
				}
			}
		}
		rb.Sel = sel
		if err := batThreads[th].UpdateAggBatch(win, rb, 0, rb.Live()); err != nil {
			t.Fatalf("UpdateAggBatch: %v", err)
		}
		if rng.Intn(10) == 0 {
			if err := recThreads[th].Flush(); err != nil {
				t.Fatal(err)
			}
			if err := batThreads[th].Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range recThreads {
		if err := recThreads[i].FinishStream(); err != nil {
			t.Fatal(err)
		}
		if err := batThreads[i].FinishStream(); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(bs []*Backend) map[uint64]map[uint64]int64 {
		got := map[uint64]map[uint64]int64{}
		for _, b := range bs {
			b.TriggerReady(func(win, key uint64, res int64) {
				if got[win] == nil {
					got[win] = map[uint64]int64{}
				}
				got[win][key] = res
			}, nil)
		}
		return got
	}
	return collect(recCluster), collect(batCluster)
}

// TestUpdateAggBatchMatchesPerRecord runs every specialized aggregate kind
// plus a generic one through both update paths on a single-leader cluster
// (the no-scatter fast path) and a multi-node cluster (the counting-sort
// scatter path), with and without a selection vector, and requires identical
// window results.
func TestUpdateAggBatchMatchesPerRecord(t *testing.T) {
	aggs := map[string]crdt.Aggregate{
		"count":   crdt.Count{},
		"sum":     crdt.Sum{},
		"min":     crdt.Min{},
		"max":     crdt.Max{},
		"avg":     crdt.Avg{},
		"generic": xorTimes{},
	}
	shapes := []struct {
		name           string
		nodes, threads int
		withSel        bool
	}{
		{"1node", 1, 1, false},
		{"1node-sel", 1, 1, true},
		{"3node", 3, 2, false},
		{"3node-sel", 3, 2, true},
	}
	for name, agg := range aggs {
		for _, sh := range shapes {
			t.Run(name+"/"+sh.name, func(t *testing.T) {
				perRec, batch := batchClusterRun(t, sh.nodes, sh.threads, agg, 42, sh.withSel)
				if len(batch) != len(perRec) {
					t.Fatalf("batch path emitted %d windows, per-record %d", len(batch), len(perRec))
				}
				for win, keys := range perRec {
					if len(batch[win]) != len(keys) {
						t.Fatalf("window %d: batch %d keys, per-record %d", win, len(batch[win]), len(keys))
					}
					for k, v := range keys {
						if batch[win][k] != v {
							t.Fatalf("window %d key %d: batch %d, per-record %d", win, k, batch[win][k], v)
						}
					}
				}
			})
		}
	}
}

// TestAppendBagBatchMatchesPerRecord feeds join-side tagged records through
// AppendBag and AppendBagBatch (sides indexed by record position, not
// selection position) and requires identical bag contents.
func TestAppendBagBatchMatchesPerRecord(t *testing.T) {
	for _, withSel := range []bool{false, true} {
		name := "dense"
		if withSel {
			name = "sel"
		}
		t.Run(name, func(t *testing.T) {
			const nodes = 3
			recCluster := newCluster(t, nodes, 1, nil, fixedWindowEnd)
			batCluster := newCluster(t, nodes, 1, nil, fixedWindowEnd)

			rng := rand.New(rand.NewSource(7))
			rb := stream.NewRecordBatch(32)
			sides := make([]uint8, rb.Cap())
			for round := 0; round < 40; round++ {
				th := rng.Intn(nodes)
				rb.Reset(1 + rng.Intn(rb.Cap()))
				var sel []int32
				if withSel {
					sel = rb.UseSel()
				}
				for rb.Free() > 0 {
					r := stream.Record{
						Key:  uint64(rng.Intn(10)),
						Time: int64(rng.Intn(1000)),
						V0:   rng.Int63n(1000),
					}
					sides[rb.Len()] = uint8(rng.Intn(2))
					live := !withSel || rng.Intn(4) != 0
					if live && sel != nil {
						sel = append(sel, int32(rb.Len()))
					}
					rb.Append(&r)
					if live {
						p := rb.Len() - 1
						e := crdt.BagElem{Time: rb.Times[p], Val: rb.V0[p], Side: sides[p]}
						if err := recCluster[th].Thread(0).AppendBag(0, rb.Keys[p], &e); err != nil {
							t.Fatal(err)
						}
					}
				}
				rb.Sel = sel
				if err := batCluster[th].Thread(0).AppendBagBatch(0, rb, 0, rb.Live(), sides); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < nodes; i++ {
				if err := recCluster[i].Thread(0).FinishStream(); err != nil {
					t.Fatal(err)
				}
				if err := batCluster[i].Thread(0).FinishStream(); err != nil {
					t.Fatal(err)
				}
			}
			type elem struct {
				t, v int64
				s    uint8
			}
			collect := func(bs []*Backend) map[uint64][]elem {
				got := map[uint64][]elem{}
				for _, b := range bs {
					b.TriggerReady(nil, func(_, key uint64, elems []crdt.BagElem) {
						for _, e := range elems {
							got[key] = append(got[key], elem{e.Time, e.Val, e.Side})
						}
					})
				}
				for _, es := range got {
					sort.Slice(es, func(i, j int) bool {
						if es[i].t != es[j].t {
							return es[i].t < es[j].t
						}
						return es[i].v < es[j].v
					})
				}
				return got
			}
			perRec, batch := collect(recCluster), collect(batCluster)
			if len(batch) != len(perRec) {
				t.Fatalf("batch %d keys, per-record %d", len(batch), len(perRec))
			}
			for k, want := range perRec {
				got := batch[k]
				if len(got) != len(want) {
					t.Fatalf("key %d: batch %d elems, per-record %d", k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("key %d elem %d: batch %+v, per-record %+v", k, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestUpdateAggBatchEdges pins the empty-range no-op and the wrong-table-kind
// error surfacing through the columnar path.
func TestUpdateAggBatchEdges(t *testing.T) {
	bs := newCluster(t, 1, 1, crdt.Sum{}, fixedWindowEnd)
	ts := bs[0].Thread(0)
	rb := stream.NewRecordBatch(4)
	if err := ts.UpdateAggBatch(0, rb, 0, 0); err != nil {
		t.Fatalf("empty range: %v", err)
	}
	if err := ts.AppendBagBatch(0, rb, 2, 2, nil); err != nil {
		t.Fatalf("empty bag range: %v", err)
	}
	if ts.updates != 0 {
		t.Fatalf("empty ranges counted %d updates", ts.updates)
	}

	// A bag-typed deployment (nil aggregate) must reject columnar agg updates
	// the same way UpdateAgg does.
	bags := newCluster(t, 1, 1, nil, fixedWindowEnd)
	rb.Append(&stream.Record{Key: 1, Time: 10, V0: 1})
	if err := bags[0].Thread(0).UpdateAggBatch(0, rb, 0, rb.Len()); !errors.Is(err, ErrTableKind) {
		t.Fatalf("bag table agg update err = %v, want ErrTableKind", err)
	}
}
