package ssb

import (
	"errors"
	"testing"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// memJournal records Journal appends in order, like core's store-backed
// implementation but in memory and without sequence stamping.
type memJournal struct {
	recs []memJournalRec
	fail error
}

type memJournalRec struct {
	trigger bool
	gen     uint64
	win     uint64
	clock   []int64
	payload []byte
}

func (j *memJournal) Checkpoint(gen uint64, clock []int64, payload []byte) error {
	if j.fail != nil {
		return j.fail
	}
	j.recs = append(j.recs, memJournalRec{
		gen:     gen,
		clock:   append([]int64(nil), clock...),
		payload: append([]byte(nil), payload...),
	})
	return nil
}

func (j *memJournal) Trigger(gen, win uint64) error {
	if j.fail != nil {
		return j.fail
	}
	j.recs = append(j.recs, memJournalRec{trigger: true, gen: gen, win: win})
	return nil
}

// deltaPayload serializes a single-entry aggregate delta for key/v.
func deltaPayload(t *testing.T, key uint64, v int64) []byte {
	t.Helper()
	tbl := NewAggTable(crdt.Sum{})
	if err := tbl.UpdateAgg(&stream.Record{Key: key, Time: 1, V0: v}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	err := tbl.SerializeDelta(1<<20, func(r []byte) error {
		out = append([]byte(nil), r...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func recoverableBackend(t *testing.T, j Journal) *Backend {
	t.Helper()
	b, err := New(Config{
		Node: 0, Nodes: 1, ThreadsPerNode: 2,
		Agg: crdt.Sum{}, WindowEnd: fixedWindowEnd,
		Recoverable: true, Journal: j,
	}, make([]Sender, 1))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sumAt(t *testing.T, b *Backend, win, key uint64) int64 {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	tbl := b.primary[win]
	if tbl == nil {
		return 0
	}
	state, ok := tbl.GetAgg(key)
	if !ok {
		return 0
	}
	return crdt.Sum{}.Result(state)
}

// TestRecoverableDedup drives the epoch-commit tracker by hand: a partial
// epoch from incarnation 0, a full incarnation-1 re-send (the flush-retry
// wire pattern), and replays of a committed epoch. Every payload must merge
// exactly once.
func TestRecoverableDedup(t *testing.T) {
	b := recoverableBackend(t, nil)
	data := func(epoch uint64, inc uint8, key uint64) *Chunk {
		return &Chunk{
			Window: 0, Epoch: epoch, Watermark: stream.NoWatermark,
			Thread: 1, Partition: 0, Kind: ChunkData, Inc: inc,
			Payload: deltaPayload(t, key, 1),
		}
	}
	hb := func(epoch uint64, inc uint8, wm stream.Watermark) *Chunk {
		return &Chunk{Epoch: epoch, Watermark: wm, Thread: 1, Partition: 0, Kind: ChunkHeartbeat, Inc: inc}
	}
	// Incarnation 0 delivers a partial epoch 1: keys 1 and 2.
	for _, k := range []uint64{1, 2} {
		if err := b.HandleChunk(data(1, 0, k)); err != nil {
			t.Fatal(err)
		}
	}
	// The sender's flush failed mid-epoch and retries: incarnation 1 re-sends
	// the whole epoch (keys 1, 2, 3) plus the trailing heartbeat.
	for _, k := range []uint64{1, 2, 3} {
		if err := b.HandleChunk(data(1, 1, k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.HandleChunk(hb(1, 1, 100)); err != nil {
		t.Fatal(err)
	}
	// A replayed chunk of the now-committed epoch drops silently.
	if err := b.HandleChunk(data(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{1, 2, 3} {
		if got := sumAt(t, b, 0, k); got != 1 {
			t.Fatalf("key %d merged %d times, want 1", k, got)
		}
	}
	if got := b.ChunksDeduped(); got != 3 {
		t.Fatalf("ChunksDeduped = %d, want 3", got)
	}
	// A fresh epoch from the new incarnation merges normally.
	if err := b.HandleChunk(data(2, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := sumAt(t, b, 0, 1); got != 2 {
		t.Fatalf("key 1 after epoch 2 = %d, want 2", got)
	}
}

// TestRecoverableRejectsBadRouting checks the hard errors survive in
// recoverable mode: replay tolerates duplicates, not misrouted traffic.
func TestRecoverableRejectsBadRouting(t *testing.T) {
	b := recoverableBackend(t, nil)
	c := &Chunk{Window: 0, Epoch: 1, Thread: 1, Partition: 5, Kind: ChunkData, Payload: deltaPayload(t, 1, 1)}
	if err := b.HandleChunk(c); !errors.Is(err, ErrBadDestination) {
		t.Fatalf("misrouted chunk: %v", err)
	}
	c = &Chunk{Window: 0, Epoch: 1, Gen: 7, Thread: 1, Partition: 0, Kind: ChunkData, Payload: deltaPayload(t, 1, 1)}
	if err := b.HandleChunk(c); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("stale generation: %v", err)
	}
}

// TestCheckpointRestoreRoundTrip runs a two-epoch, two-window workload on a
// journaled leader — window 0 triggers mid-run — then replays the journal
// into a fresh backend and checks the restored state: trigger marks, pending
// window content, commit tracking, and duplicate suppression for replayed
// traffic.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	j := &memJournal{}
	b := recoverableBackend(t, j)
	ts := b.Thread(0) // thread 0 flushes via loopback into its own leader
	other := func(epoch uint64, wm stream.Watermark) *Chunk {
		return &Chunk{Epoch: epoch, Watermark: wm, Thread: 1, Partition: 0, Kind: ChunkHeartbeat}
	}

	// Epoch 1: state in windows 0 and 1, watermark past window 0's end.
	for i := 0; i < 4; i++ {
		if err := ts.UpdateAgg(0, &stream.Record{Key: uint64(i), Time: 900, V0: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.UpdateAgg(1, &stream.Record{Key: 9, Time: 1500, V0: 5}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	// Thread 1's heartbeat completes coverage of window 0.
	if err := b.HandleChunk(other(1, 1200)); err != nil {
		t.Fatal(err)
	}
	emitted := map[uint64]int64{}
	if n := b.TriggerReady(func(_, key uint64, res int64) { emitted[key] = res }, nil); n != 1 {
		t.Fatalf("triggered %d windows, want 1", n)
	}
	if err := b.JournalErr(); err != nil {
		t.Fatal(err)
	}

	// Epoch 2: more window-1 state, then a periodic checkpoint.
	if err := ts.UpdateAgg(1, &stream.Record{Key: 9, Time: 1600, V0: 3}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if !b.CheckpointDue(1) {
		t.Fatal("checkpoint not due after two commits")
	}
	committed, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if committed[0] != 2 || committed[1] != 1 {
		t.Fatalf("committed = %v, want [2 1]", committed)
	}
	if b.CheckpointDue(1) {
		t.Fatal("cadence not reset by checkpoint")
	}

	// Restore: replay the journal in order into a fresh backend.
	r := recoverableBackend(t, nil)
	for _, rec := range j.recs {
		if rec.trigger {
			if err := r.RestoreTrigger(rec.win); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := r.RestoreCheckpoint(rec.clock, rec.payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.FinishRestore()

	if !r.TriggeredAtOrAfter(0) {
		t.Fatal("restored backend lost the window-0 trigger mark")
	}
	if got := sumAt(t, r, 1, 9); got != 8 {
		t.Fatalf("restored window-1 sum = %d, want 8", got)
	}
	if got := sumAt(t, r, 0, 1); got != 0 {
		t.Fatal("restored backend resurrected triggered window state")
	}
	if got := r.CommittedEpochs(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("restored committed = %v, want [2 1]", got)
	}
	if got, want := r.Stats().WindowsOutput, uint64(1); got != want {
		t.Fatalf("restored WindowsOutput = %d, want %d", got, want)
	}
	// Replayed committed traffic (thread 1's heartbeat, an old-epoch data
	// chunk) must be suppressed, not double-merged.
	if err := r.HandleChunk(other(1, 1200)); err != nil {
		t.Fatal(err)
	}
	old := &Chunk{Window: 1, Epoch: 1, Thread: 1, Partition: 0, Kind: ChunkData, Payload: deltaPayload(t, 9, 99)}
	if err := r.HandleChunk(old); err != nil {
		t.Fatal(err)
	}
	if got := sumAt(t, r, 1, 9); got != 8 {
		t.Fatalf("replay changed restored state: sum = %d, want 8", got)
	}
	if r.ChunksDeduped() == 0 {
		t.Fatal("replayed duplicate not counted")
	}
	// The restored clock matches the last durable cut.
	if got, want := r.Clock().Entry(0), b.Clock().Entry(0); got != want {
		t.Fatalf("restored clock entry 0 = %d, want %d", got, want)
	}
}

// TestJournalErrorLatched: a failing journal surfaces through JournalErr and
// Checkpoint, and does not panic the trigger path.
func TestJournalErrorLatched(t *testing.T) {
	j := &memJournal{fail: errors.New("disk gone")}
	b := recoverableBackend(t, j)
	ts := b.Thread(0)
	if err := ts.UpdateAgg(0, &stream.Record{Key: 1, Time: 900, V0: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Checkpoint(); err == nil {
		t.Fatal("Checkpoint swallowed the journal error")
	}
	if b.JournalErr() == nil {
		t.Fatal("journal error not latched")
	}
}

// TestFlushRetryResends: a flush that fails mid-transfer retries with the
// same epoch and a bumped incarnation, and the receiving leader merges the
// epoch exactly once.
func TestFlushRetryResends(t *testing.T) {
	n := 2
	backends := make([]*Backend, n)
	senders := make([][]Sender, n)
	for i := range senders {
		senders[i] = make([]Sender, n)
	}
	for i := 0; i < n; i++ {
		var err error
		backends[i], err = New(Config{
			Node: i, Nodes: n, ThreadsPerNode: 1,
			Agg: crdt.Sum{}, WindowEnd: fixedWindowEnd,
			ChunkSize: 64, Recoverable: true,
		}, senders[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	flaky := &flakySender{dst: backends[1], failAfter: 2}
	senders[0][1] = flaky
	senders[1][0] = &directSender{dst: backends[0]}

	ts := backends[0].Thread(0)
	// Enough remote-partition keys that the compact delta splits into
	// several 64-byte chunks (varint entries run ~3 bytes each).
	var remote []uint64
	for k := uint64(0); len(remote) < 80; k++ {
		if p, _ := backends[0].Owner(0, k); p == 1 {
			remote = append(remote, k)
		}
	}
	for _, k := range remote {
		if err := ts.UpdateAgg(0, &stream.Record{Key: k, Time: 500, V0: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Flush(); err == nil {
		t.Fatal("flush succeeded despite dead link")
	}
	if ts.Inc() != 0 || ts.Epoch() != 1 {
		t.Fatalf("after failed flush: inc=%d epoch=%d", ts.Inc(), ts.Epoch())
	}
	// The link heals; the retry re-sends the identical epoch.
	flaky.failAfter = -1
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if ts.Inc() != 1 || ts.Epoch() != 1 {
		t.Fatalf("after retry: inc=%d epoch=%d, want 1/1", ts.Inc(), ts.Epoch())
	}
	for _, k := range remote {
		if got := sumAt(t, backends[1], 0, k); got != 1 {
			t.Fatalf("key %d merged %d times, want exactly 1", k, got)
		}
	}
	if backends[1].ChunksDeduped() == 0 {
		t.Fatal("retry prefix not deduplicated")
	}
}

// flakySender delivers the first failAfter chunks then fails until healed
// (failAfter < 0 delivers everything).
type flakySender struct {
	dst       *Backend
	sent      int
	failAfter int
}

func (s *flakySender) Send(c *Chunk) error {
	if s.failAfter >= 0 && s.sent >= s.failAfter {
		return errors.New("link down")
	}
	s.sent++
	cc := *c
	cc.Payload = append([]byte(nil), c.Payload...)
	return s.dst.HandleChunk(&cc)
}
