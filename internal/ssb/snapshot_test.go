package ssb

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// buildLoadedBackend drives a 2-node cluster partway through a stream and
// returns one backend with pending leader state plus the threads to finish
// the stream with.
func buildLoadedBackend(t *testing.T, agg crdt.Aggregate) ([]*Backend, []*ThreadState) {
	t.Helper()
	bs := newCluster(t, 2, 1, agg, fixedWindowEnd)
	threads := []*ThreadState{bs[0].Thread(0), bs[1].Thread(0)}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 600; i++ {
		win := uint64(i / 200)
		r := stream.Record{
			Key:  uint64(rng.Intn(40)),
			Time: int64(i) * 5,
			V0:   rng.Int63n(50),
		}
		ts := threads[i%2]
		var err error
		if agg != nil {
			err = ts.UpdateAgg(win, &r)
		} else {
			e := crdt.BagElem{Time: r.Time, Val: r.V0, Side: uint8(i % 2)}
			err = ts.AppendBag(win, r.Key, &e)
		}
		if err != nil {
			t.Fatal(err)
		}
		if i%150 == 149 {
			if err := ts.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, ts := range threads {
		if err := ts.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return bs, threads
}

func collectAgg(b *Backend) map[[2]uint64]int64 {
	out := map[[2]uint64]int64{}
	b.TriggerReady(func(win, key uint64, res int64) {
		out[[2]uint64{win, key}] = res
	}, nil)
	return out
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	bs, threads := buildLoadedBackend(t, crdt.Sum{})
	leader := bs[0]

	var buf bytes.Buffer
	if err := leader.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// A fresh backend (a recovered node) restores the checkpoint.
	senders := make([]Sender, 2)
	restored, err := New(Config{
		Node: 0, Nodes: 2, ThreadsPerNode: 1,
		Agg: crdt.Sum{}, WindowEnd: fixedWindowEnd,
	}, senders)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.PendingWindows() != leader.PendingWindows() {
		t.Fatalf("pending windows %d, want %d", restored.PendingWindows(), leader.PendingWindows())
	}

	// Both the original and the restored leader finish the stream
	// identically: feed the final heartbeats to both.
	for _, ts := range threads {
		_ = ts
	}
	final := &Chunk{Epoch: 99, Watermark: math.MaxInt64, Kind: ChunkHeartbeat}
	for gtid := 0; gtid < 2; gtid++ {
		final.Thread = gtid
		if err := leader.HandleChunk(final); err != nil {
			t.Fatal(err)
		}
		if err := restored.HandleChunk(final); err != nil {
			t.Fatal(err)
		}
	}
	got := collectAgg(restored)
	want := collectAgg(leader)
	if len(want) == 0 {
		t.Fatal("no rows from original leader")
	}
	if len(got) != len(want) {
		t.Fatalf("restored emitted %d rows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("row %v: restored %d, want %d", k, got[k], v)
		}
	}
}

func TestSnapshotRestoreBags(t *testing.T) {
	bs, _ := buildLoadedBackend(t, nil)
	leader := bs[1]
	var buf bytes.Buffer
	if err := leader.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := New(Config{
		Node: 1, Nodes: 2, ThreadsPerNode: 1,
		WindowEnd: fixedWindowEnd,
	}, make([]Sender, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	final := &Chunk{Epoch: 99, Watermark: math.MaxInt64, Kind: ChunkHeartbeat}
	counts := func(b *Backend) map[[2]uint64][2]int {
		for gtid := 0; gtid < 2; gtid++ {
			final.Thread = gtid
			if err := b.HandleChunk(final); err != nil {
				t.Fatal(err)
			}
		}
		out := map[[2]uint64][2]int{}
		b.TriggerReady(nil, func(win, key uint64, elems []crdt.BagElem) {
			l, r := 0, 0
			for _, e := range elems {
				if e.Side == 0 {
					l++
				} else {
					r++
				}
			}
			out[[2]uint64{win, key}] = [2]int{l, r}
		})
		return out
	}
	want := counts(leader)
	got := counts(restored)
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("rows: got %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("bag %v: got %v, want %v", k, got[k], v)
		}
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	bs, _ := buildLoadedBackend(t, crdt.Sum{})
	var buf bytes.Buffer
	if err := bs[0].Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong node id.
	other, _ := New(Config{Node: 1, Nodes: 2, ThreadsPerNode: 1, Agg: crdt.Sum{}, WindowEnd: fixedWindowEnd}, make([]Sender, 2))
	if err := other.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("node mismatch err = %v", err)
	}
	// Wrong CRDT kind.
	holistic, _ := New(Config{Node: 0, Nodes: 2, ThreadsPerNode: 1, WindowEnd: fixedWindowEnd}, make([]Sender, 2))
	if err := holistic.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("kind mismatch err = %v", err)
	}
	// Corrupt stream.
	same, _ := New(Config{Node: 0, Nodes: 2, ThreadsPerNode: 1, Agg: crdt.Sum{}, WindowEnd: fixedWindowEnd}, make([]Sender, 2))
	if err := same.Restore(bytes.NewReader(buf.Bytes()[:16])); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("truncated err = %v", err)
	}
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] = 'X'
	if err := same.Restore(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("bad magic err = %v", err)
	}
}

func TestSnapshotIsDeterministic(t *testing.T) {
	bs, _ := buildLoadedBackend(t, crdt.Sum{})
	var a, b bytes.Buffer
	if err := bs[0].Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := bs[0].Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of the same state differ")
	}
}
