package ssb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
	"github.com/slash-stream/slash/internal/vclock"
)

// ChunkKind tags state-synchronization messages.
type ChunkKind uint8

// Chunk kinds: data chunks carry a raw log region of one (window, partition)
// fragment; heartbeats carry only the sender's watermark so progress flows
// even when a thread produced no state for a leader.
const (
	ChunkData ChunkKind = iota + 1
	ChunkHeartbeat
)

// Chunk is one unit of the epoch-based coherence protocol (§7.2.2): a delta
// of a helper fragment in flight from a helper thread to a partition leader,
// with the vector-clock update piggybacked on it.
type Chunk struct {
	// Window identifies the window bucket whose state this chunk carries.
	Window uint64
	// Epoch is the sender's epoch counter at flush time; it versions the
	// partition content and orders updates from the same sender.
	Epoch uint64
	// Watermark is the sender thread's event-time low watermark.
	Watermark stream.Watermark
	// Gen is the partition-map generation the sender routed this chunk
	// under. Leaders reject data chunks whose generation disagrees with
	// their map's generation for the chunk's window, so a delta routed
	// across a membership change can never be double-counted silently
	// (the elastic reconfiguration invariant, §7.2/§8).
	Gen uint64
	// Thread is the global id of the sending executor thread.
	Thread int
	// Partition is the destination key-space partition.
	Partition int
	// Kind distinguishes data chunks from heartbeats.
	Kind ChunkKind
	// Inc is the sender thread's incarnation: bumped when a failed flush is
	// retried and when a recovered node re-flushes after a restart. Leaders
	// in recoverable mode use an incarnation bump to arm duplicate
	// suppression for the prefix of the epoch they already merged. The wire
	// field is one byte; restart counts are bounded far below 255 (see
	// core's MaxRestarts), so saturation is a non-issue in practice.
	Inc uint8
	// Payload is a raw log region (ChunkData only).
	Payload []byte
}

// ChunkHeaderSize is the wire size of an encoded chunk header:
// window u64 | epoch u64 | watermark i64 | gen u64 | thread u32 |
// partition u32 | kind u8 | inc u8 | reserved [2]u8 | paylen u32.
const ChunkHeaderSize = 48

// EncodedSize returns the wire size of the chunk.
func (c *Chunk) EncodedSize() int { return ChunkHeaderSize + len(c.Payload) }

// Encode writes the chunk into dst, returning the bytes used.
func (c *Chunk) Encode(dst []byte) int {
	putU64(dst[0:], c.Window)
	putU64(dst[8:], c.Epoch)
	putU64(dst[16:], uint64(c.Watermark))
	putU64(dst[24:], c.Gen)
	putU32(dst[32:], uint32(c.Thread))
	putU32(dst[36:], uint32(c.Partition))
	dst[40] = byte(c.Kind)
	dst[41] = c.Inc
	dst[42], dst[43] = 0, 0
	putU32(dst[44:], uint32(len(c.Payload)))
	copy(dst[ChunkHeaderSize:], c.Payload)
	return ChunkHeaderSize + len(c.Payload)
}

// DecodeChunk parses src. The payload aliases src; callers that retain the
// chunk beyond the life of src must copy it.
func DecodeChunk(src []byte) (Chunk, error) {
	if len(src) < ChunkHeaderSize {
		return Chunk{}, ErrChunkFormat
	}
	c := Chunk{
		Window:    getU64(src[0:]),
		Epoch:     getU64(src[8:]),
		Watermark: stream.Watermark(getU64(src[16:])),
		Gen:       getU64(src[24:]),
		Thread:    int(getU32(src[32:])),
		Partition: int(getU32(src[36:])),
		Kind:      ChunkKind(src[40]),
		Inc:       src[41],
	}
	if c.Kind != ChunkData && c.Kind != ChunkHeartbeat {
		return Chunk{}, fmt.Errorf("%w: kind %d", ErrChunkFormat, c.Kind)
	}
	plen := int(getU32(src[44:]))
	if ChunkHeaderSize+plen > len(src) {
		return Chunk{}, fmt.Errorf("%w: payload overflows buffer", ErrChunkFormat)
	}
	c.Payload = src[ChunkHeaderSize : ChunkHeaderSize+plen]
	return c, nil
}

// Sender ships encoded chunks to one destination executor. The Slash core
// implements it over RDMA channels; tests use an in-memory loopback.
type Sender interface {
	Send(c *Chunk) error
}

// Config describes one executor's view of the SSB deployment.
type Config struct {
	// Node is this executor's id; it is the leader of partition Node.
	Node int
	// Nodes is the number of executors at construction time (= number of
	// primary partitions in a static deployment).
	Nodes int
	// MaxNodes is the deployment capacity: the number of node slots the
	// vector clock, epoch table, and sender table are sized for. An
	// elastic deployment (§7.2, §8: workers join and leave without state
	// migration) sets it above Nodes; zero defaults to Nodes (static).
	MaxNodes int
	// Map is the shared, generation-stamped partition map routing
	// (window, key) pairs to leader executors. Nil builds a private
	// static map over nodes 0..Nodes-1 and activates all their clock
	// entries — the fixed deployment of the paper's evaluation (§8).
	// Non-nil marks an elastic deployment: the controller owns membership
	// and must activate clock entries explicitly (see ActivateNode).
	Map *PartitionMap
	// ThreadsPerNode is the worker thread count per executor; vector
	// clocks carry one entry per thread cluster-wide.
	ThreadsPerNode int
	// Agg selects the CRDT: a commutative aggregate, or nil for holistic
	// (bag) state.
	Agg crdt.Aggregate
	// ChunkSize caps one data chunk's payload. Defaults to 16 KiB.
	ChunkSize int
	// EpochBytes is the epoch length in ingested bytes per thread (§8.1.1
	// configures 64 MB cluster-wide; scale per deployment). Defaults to
	// 1 MiB.
	EpochBytes int64
	// WindowEnd maps a window id to its end timestamp, provided by the
	// window assigner. A window triggers once the vector clock covers it.
	WindowEnd func(win uint64) stream.Watermark
	// Recoverable enables the epoch-commit tracker: the leader tracks, per
	// sender thread, which epochs are fully merged (committed by their
	// trailing heartbeat) and suppresses duplicates when chunks are replayed
	// after a failure — from upstream replay rings or from a re-flushing,
	// incarnation-bumped sender. Off (the default), replayed traffic is a
	// protocol violation and duplicate checks cost nothing.
	Recoverable bool
	// Journal, when non-nil, receives this leader's durable recovery
	// records: incremental checkpoints (the inbound delta log since the
	// previous checkpoint, with the vector clock and tracker state) and
	// window-trigger marks. Setting it implies Recoverable.
	Journal Journal
}

// DefaultChunkSize caps chunk payloads when Config.ChunkSize is zero.
const DefaultChunkSize = 16 * 1024

// DefaultEpochBytes is the per-thread epoch length when unset.
const DefaultEpochBytes = 1 << 20

// Errors surfaced by the protocol.
var (
	// ErrStaleEpoch reports a chunk whose epoch counter regressed — the
	// FIFO channel contract (§6.2) makes this impossible on a healthy
	// deployment, so it indicates corruption or a routing bug.
	ErrStaleEpoch = errors.New("ssb: chunk epoch regressed")
	// ErrLateChunk reports a data chunk for a window the leader already
	// triggered — a violation of property P1 (§5.1).
	ErrLateChunk = errors.New("ssb: data chunk for an already-triggered window")
	// ErrBadDestination reports a chunk delivered to an executor that is
	// not the leader of the chunk's partition.
	ErrBadDestination = errors.New("ssb: chunk routed to wrong leader")
	// ErrStaleGeneration reports a data chunk routed under a partition-map
	// generation that no longer governs its window: the sender held
	// unflushed fragments across a reconfiguration cutover instead of
	// flushing at the epoch-aligned barrier. Rejecting the chunk turns a
	// silent double-count into a loud failure (§7.2/§8 elasticity).
	ErrStaleGeneration = errors.New("ssb: chunk generation does not govern its window")
)

// Backend is one executor's state backend instance. It plays two roles:
// helper threads (ThreadState) eagerly maintain fragments of every
// partition, and the leader side merges inbound deltas of its own primary
// partition and triggers windows.
type Backend struct {
	cfg  Config
	pmap *PartitionMap

	// sendMu guards the sender and heartbeat-peer tables, which an elastic
	// controller rewrites while helper threads flush (§7.2/§8).
	sendMu  sync.RWMutex
	senders []Sender
	peers   []int

	mu        sync.Mutex
	primary   map[uint64]*Table
	triggered map[uint64]bool
	clock     *vclock.Clock
	lastEpoch []uint64
	tablePool []*Table

	// Queryable-state publication (nil unless SetStatePublisher was called):
	// the stateq publisher, the live-republication threshold, per-window
	// un-published delta bytes, and the windows published at least once.
	statePub       StatePublisher
	stateMinDelta  int
	stateDirty     map[uint64]int
	statePublished map[uint64]bool

	// Recovery state (nil / empty unless Config.Recoverable): the
	// epoch-commit tracker, the pending incremental-checkpoint log (inbound
	// deltas merged since the last checkpoint record), and the first journal
	// error, latched because TriggerReady cannot return it.
	tracker *epochTracker
	ckptLog []byte
	jErr    error

	// statistics
	chunksMerged  uint64
	bytesMerged   uint64
	windowsOutput uint64
}

// New creates a backend. senders[i] must ship chunks to executor i; the
// entry for the own node may be nil (local flushes short-circuit). senders
// must have MaxNodes entries (Nodes when MaxNodes is zero) and is aliased,
// not copied — callers may fill entries after construction, but once threads
// flush concurrently they must go through SetSender.
func New(cfg Config, senders []Sender) (*Backend, error) {
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = cfg.Nodes
	}
	if cfg.Nodes < 1 || cfg.MaxNodes < cfg.Nodes {
		return nil, fmt.Errorf("ssb: invalid deployment %d nodes of %d capacity", cfg.Nodes, cfg.MaxNodes)
	}
	if cfg.Node < 0 || cfg.Node >= cfg.MaxNodes {
		return nil, fmt.Errorf("ssb: invalid node %d of %d", cfg.Node, cfg.MaxNodes)
	}
	if cfg.ThreadsPerNode < 1 {
		return nil, fmt.Errorf("ssb: invalid threads per node %d", cfg.ThreadsPerNode)
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.EpochBytes == 0 {
		cfg.EpochBytes = DefaultEpochBytes
	}
	if cfg.WindowEnd == nil {
		return nil, errors.New("ssb: WindowEnd is required")
	}
	if len(senders) != cfg.MaxNodes {
		return nil, fmt.Errorf("ssb: %d senders for capacity %d", len(senders), cfg.MaxNodes)
	}
	if cfg.Journal != nil {
		cfg.Recoverable = true
	}
	static := cfg.Map == nil
	if static {
		cfg.Map = StaticPartitionMap(cfg.Nodes)
	}
	b := &Backend{
		cfg:       cfg,
		pmap:      cfg.Map,
		senders:   senders,
		primary:   make(map[uint64]*Table),
		triggered: make(map[uint64]bool),
		clock:     vclock.NewRetired(cfg.MaxNodes * cfg.ThreadsPerNode),
		lastEpoch: make([]uint64, cfg.MaxNodes*cfg.ThreadsPerNode),
	}
	if cfg.Recoverable {
		b.tracker = newEpochTracker(cfg.MaxNodes * cfg.ThreadsPerNode)
	}
	// Every clock entry starts retired (+inf: never holds a trigger back);
	// membership activation flips a node's entries live. A static
	// deployment activates all of its nodes here; an elastic controller
	// activates nodes as they join (ActivateNode) before they ingest.
	if static {
		for n := 0; n < cfg.Nodes; n++ {
			b.ActivateNode(n)
		}
		b.peers = b.pmap.Current().Active
	}
	return b, nil
}

// Partition maps a key to its primary partition (and thus leader executor)
// under the latest partition-map generation, using the multiply-shift hash
// with a high-bits range reduction. The previous modulo-based mapping
// concentrated strided key populations (YSB campaign ids are dense
// multiples, §8.2.1) onto few partitions; see TestPartitionDistribution.
// Elastic routing is per window — use Owner for window-aware placement.
func (b *Backend) Partition(key uint64) int {
	g := b.pmap.Current()
	return g.Active[partitionIndex(PartitionHash(key), len(g.Active))]
}

// Owner routes (win, key) to its leader executor and reports the governing
// partition-map generation — the placement decision of the stateful fast
// path (§7.1.2), stable per (window, key) across reconfigurations.
func (b *Backend) Owner(win, key uint64) (node int, gen uint64) {
	return b.pmap.Owner(win, key)
}

// Map exposes the backend's partition map.
func (b *Backend) Map() *PartitionMap { return b.pmap }

// ActivateNode flips a node's vector-clock entries from retired (+inf) to
// live (no watermark). An elastic controller calls it on every backend when
// the node joins, before the node ingests a single record, so windows the
// new node can still contribute to cannot trigger early (§5.1 property P1
// across membership changes).
func (b *Backend) ActivateNode(node int) {
	base := node * b.cfg.ThreadsPerNode
	for i := 0; i < b.cfg.ThreadsPerNode; i++ {
		b.clock.Activate(base + i)
	}
}

// SetSender installs the sender shipping chunks to executor node — the
// data-plane half of a node join (§7.2.2 setup phase, performed online).
func (b *Backend) SetSender(node int, s Sender) {
	b.sendMu.Lock()
	b.senders[node] = s
	b.sendMu.Unlock()
}

// SetPeers replaces the heartbeat target set: the executors every flush
// sends a watermark to. The controller narrows it when a node retires so
// no traffic targets a torn-down channel.
func (b *Backend) SetPeers(peers []int) {
	p := append([]int(nil), peers...)
	sort.Ints(p)
	b.sendMu.Lock()
	b.peers = p
	b.sendMu.Unlock()
}

// Peers returns the current heartbeat target set.
func (b *Backend) Peers() []int {
	b.sendMu.RLock()
	defer b.sendMu.RUnlock()
	return append([]int(nil), b.peers...)
}

// sender returns the sender for node, or nil.
func (b *Backend) sender(node int) Sender {
	b.sendMu.RLock()
	defer b.sendMu.RUnlock()
	return b.senders[node]
}

// TriggeredAtOrAfter reports whether any window with id >= win has already
// triggered — the controller's guard that a reconfiguration cutover still
// lies in the future of every leader (ErrCutoverInPast in core).
func (b *Backend) TriggeredAtOrAfter(win uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for w := range b.triggered {
		if w >= win {
			return true
		}
	}
	return false
}

// HasPendingAtOrAfter reports whether this leader holds un-triggered state
// for any window with id >= win. Together with TriggeredAtOrAfter it lets
// the controller verify a reconfiguration cutover lies strictly in the
// future: data already merged at or past the cutover means the barrier came
// too late (the generation stamp would split the window across two owners).
func (b *Backend) HasPendingAtOrAfter(win uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for w := range b.primary {
		if w >= win {
			return true
		}
	}
	return false
}

// Clock exposes the leader's progress clock (for diagnostics and tests).
func (b *Backend) Clock() *vclock.Clock { return b.clock }

// newTable builds a fragment table matching the configured CRDT.
func (b *Backend) newTable() *Table {
	if b.cfg.Agg != nil {
		return NewAggTable(b.cfg.Agg)
	}
	return NewBagTable()
}

// takeTable reuses a pooled, reset table if available. Pooling avoids
// rebuilding hash-index bucket arrays and reallocating logs for every
// window and epoch (the log "adaptively resizes" and keeps its capacity,
// §7.2.1). Callers must hold b.mu.
func (b *Backend) takeTable() *Table {
	if n := len(b.tablePool); n > 0 {
		t := b.tablePool[n-1]
		b.tablePool = b.tablePool[:n-1]
		return t
	}
	return b.newTable()
}

// putTable resets and pools a table. Callers must hold b.mu.
func (b *Backend) putTable(t *Table) {
	if len(b.tablePool) < 64 {
		t.Reset()
		b.tablePool = append(b.tablePool, t)
	}
}

// HandleChunk is the leader half of the synchronization phase: it merges a
// delta into the primary partition and folds the piggybacked watermark into
// the vector clock. Chunks from one sender must arrive in FIFO order (the
// RDMA channel guarantees this).
func (b *Backend) HandleChunk(c *Chunk) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c.Thread < 0 || c.Thread >= b.cfg.MaxNodes*b.cfg.ThreadsPerNode {
		return fmt.Errorf("%w: thread %d", ErrChunkFormat, c.Thread)
	}
	if b.tracker != nil {
		return b.handleChunkRecoverable(c)
	}
	if c.Epoch < b.lastEpoch[c.Thread] {
		return fmt.Errorf("%w: epoch %d after %d from thread %d", ErrStaleEpoch, c.Epoch, b.lastEpoch[c.Thread], c.Thread)
	}
	b.lastEpoch[c.Thread] = c.Epoch
	if c.Kind == ChunkData {
		if c.Partition != b.cfg.Node {
			return fmt.Errorf("%w: partition %d at leader %d", ErrBadDestination, c.Partition, b.cfg.Node)
		}
		if g := b.pmap.GenFor(c.Window); c.Gen != g {
			return fmt.Errorf("%w: window %d carries gen %d, map says %d", ErrStaleGeneration, c.Window, c.Gen, g)
		}
		if b.triggered[c.Window] {
			return fmt.Errorf("%w: window %d", ErrLateChunk, c.Window)
		}
		tbl := b.primary[c.Window]
		if tbl == nil {
			tbl = b.takeTable()
			b.primary[c.Window] = tbl
		}
		if err := tbl.MergeDelta(c.Payload); err != nil {
			return err
		}
		b.chunksMerged++
		b.bytesMerged += uint64(len(c.Payload))
		b.markStateDirty(c.Window, len(c.Payload))
	}
	// Merging happens before the watermark becomes visible, so a trigger
	// that observes the new clock entry also observes the merged state.
	b.clock.Observe(c.Thread, c.Watermark)
	return nil
}

// EmitAgg receives one aggregate group of a triggered window.
type EmitAgg func(win uint64, key uint64, result int64)

// EmitBag receives one key's merged bag of a triggered window.
type EmitBag func(win uint64, key uint64, elems []crdt.BagElem)

// TriggerReady fires every pending window whose end timestamp the vector
// clock covers (property P1: no result at timestamp t may be computed from
// records with timestamps greater than t — covered means every thread in
// the cluster has moved past the window end). Triggered windows are
// discarded; the number of windows fired is returned.
func (b *Backend) TriggerReady(emitAgg EmitAgg, emitBag EmitBag) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	var ready []uint64
	for win := range b.primary {
		if b.clock.Covers(b.cfg.WindowEnd(win)) {
			ready = append(ready, win)
		}
	}
	// Deterministic output order across runs.
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	if len(ready) > 0 && b.cfg.Journal != nil {
		// Make everything merged so far durable before the trigger marks:
		// a restore replays the journal in order, so the deltas a trigger
		// consumed must precede it or the restored tracker undercounts the
		// epoch prefix already applied.
		b.flushCheckpointLocked()
	}
	for _, win := range ready {
		tbl := b.primary[win]
		if b.cfg.Agg != nil {
			if emitAgg != nil {
				tbl.forEachAggResult(func(key uint64, result int64) {
					emitAgg(win, key, result)
				})
			}
		} else if emitBag != nil {
			tbl.ForEachBag(func(key uint64, elems []crdt.BagElem) {
				emitBag(win, key, elems)
			})
		}
		// Publish the final image before the table is recycled: sealed
		// snapshots are the byte-exact state the sink was fed from.
		b.sealStateLocked(win, tbl)
		b.putTable(tbl)
		delete(b.primary, win)
		b.triggered[win] = true
		b.windowsOutput++
		if b.cfg.Journal != nil {
			// The trigger mark is appended in the same merge step that
			// emitted the window, so a restore never re-emits it. The
			// emit-then-append gap is unreachable in-process: a fenced node's
			// merge task finishes its step before teardown proceeds, so both
			// happen or neither. A future out-of-process port would need a
			// transactional sink to close it.
			if err := b.cfg.Journal.Trigger(b.pmap.GenFor(win), win); err != nil && b.jErr == nil {
				b.jErr = err
			}
		}
	}
	return len(ready)
}

// PendingWindows returns the number of un-triggered windows with state.
func (b *Backend) PendingWindows() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.primary)
}

// Stats reports merge-side counters.
type Stats struct {
	ChunksMerged  uint64
	BytesMerged   uint64
	WindowsOutput uint64
}

// Stats snapshots the leader-side counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{ChunksMerged: b.chunksMerged, BytesMerged: b.bytesMerged, WindowsOutput: b.windowsOutput}
}

// tableKey identifies one helper fragment: a window bucket of one partition
// under one partition-map generation. The generation is part of the key so
// a flush after a reconfiguration stamps each delta with the generation
// that actually routed it — a fragment held across a cutover is rejected by
// its leader (ErrStaleGeneration) instead of being merged twice.
type tableKey struct {
	win  uint64
	gen  uint64
	part int
}

// ThreadState is the helper half of the SSB owned by a single executor
// thread: eager, thread-local partial state for every partition (§7.1.2).
// Per-record updates touch only thread-local memory — no queueing, no
// skew-sensitive partitioning — and epochs lazily reconcile the fragments
// with their leaders.
type ThreadState struct {
	be     *Backend
	gtid   int
	tables map[tableKey]*Table
	pool   []*Table
	// cache is a small direct-mapped (window → per-partition tables)
	// cache that keeps the per-record fast path off the Go map for the
	// common case of consecutive records hitting the same few windows. An
	// entry is valid for one partition-map generation: a reconfiguration
	// changes gen and the stale entry misses, falling back to the map.
	cache [tableCacheSlots]winTables

	// batch holds the reusable scratch of the columnar update path
	// (scatter buffers, hash column) and aggKind the deployment aggregate's
	// specialized batch dispatch; see batch.go.
	batch   batchScratch
	aggKind aggKind
	wm    stream.Watermark
	epoch uint64
	pend  int64 // bytes ingested since last flush

	// inc is the thread's incarnation, stamped on every chunk: bumped when a
	// failed flush is retried and restored (pre-bumped) after a node
	// restart, so leaders can suppress the prefix of the epoch they already
	// merged (see epochTracker).
	inc uint8
	// inFlight / dataDone are the flush state machine for retries: a flush
	// that failed mid-transfer keeps its epoch (inFlight) and, once the data
	// phase completed and the fragments were recycled, retries resume at the
	// heartbeat phase (dataDone).
	inFlight bool
	dataDone bool
	// flushKeys is the scratch slice for deterministic flush ordering.
	flushKeys []tableKey

	// maxWin is the highest window id this thread ever created state for
	// (hasWin guards window 0). The controller reads it at the quiesce
	// barrier to resolve an automatic reconfiguration cutover; the
	// quiesced/done atomics on the source task publish it across goroutines.
	maxWin uint64
	hasWin bool

	// statistics for the drill-down experiments
	updates      uint64
	flushes      uint64
	chunksSent   uint64
	bytesShipped uint64
}

// Thread creates the state handle for local thread index i.
func (b *Backend) Thread(i int) *ThreadState {
	if i < 0 || i >= b.cfg.ThreadsPerNode {
		panic(fmt.Sprintf("ssb: thread %d out of range", i))
	}
	return &ThreadState{
		be:      b,
		gtid:    b.cfg.Node*b.cfg.ThreadsPerNode + i,
		tables:  make(map[tableKey]*Table),
		wm:      stream.NoWatermark,
		aggKind: kindOfAgg(b.cfg.Agg),
	}
}

// GlobalThreadID returns the cluster-wide thread id (the vector clock slot).
func (ts *ThreadState) GlobalThreadID() int { return ts.gtid }

// Watermark returns the thread's current low watermark.
func (ts *ThreadState) Watermark() stream.Watermark { return ts.wm }

// tableCacheSlots sizes the direct-mapped window cache (enough for the
// in-flight windows of tumbling and small sliding assigners).
const tableCacheSlots = 4

// winTables is one direct-mapped cache entry: the per-partition table
// pointers of one (window, generation).
type winTables struct {
	win    uint64
	gen    uint64
	valid  bool
	tables []*Table
}

// cacheEntry returns the cache entry primed for (win, gen), tracking maxWin.
// Entries whose slot held a different window or generation restart empty;
// missing partitions resolve through tableSlow.
func (ts *ThreadState) cacheEntry(win, gen uint64) *winTables {
	if !ts.hasWin || win > ts.maxWin {
		ts.maxWin = win
		ts.hasWin = true
	}
	c := &ts.cache[win%tableCacheSlots]
	if !(c.valid && c.win == win && c.gen == gen) {
		c.win = win
		c.gen = gen
		c.valid = true
		if c.tables == nil {
			c.tables = make([]*Table, ts.be.cfg.MaxNodes)
		} else {
			for i := range c.tables {
				c.tables[i] = nil
			}
		}
	}
	return c
}

// tableSlow resolves (win, gen, part) through the fragment map — creating
// the fragment on first touch — and installs it in the cache entry.
func (ts *ThreadState) tableSlow(c *winTables, win, gen uint64, part int) *Table {
	k := tableKey{win: win, gen: gen, part: part}
	t := ts.tables[k]
	if t == nil {
		if n := len(ts.pool); n > 0 {
			t = ts.pool[n-1]
			ts.pool = ts.pool[:n-1]
		} else {
			t = ts.be.newTable()
		}
		ts.tables[k] = t
	}
	c.tables[part] = t
	return t
}

func (ts *ThreadState) table(win, gen uint64, part int) *Table {
	c := ts.cacheEntry(win, gen)
	if t := c.tables[part]; t != nil {
		return t
	}
	return ts.tableSlow(c, win, gen, part)
}

// invalidateCache drops the window cache (after Flush recycled tables).
func (ts *ThreadState) invalidateCache() {
	for i := range ts.cache {
		ts.cache[i].valid = false
	}
}

// UpdateAgg is the stateful fast path for aggregations: fold rec into the
// thread-local fragment of rec.Key's partition (§7.1.2 — the common case
// never leaves thread-local memory).
func (ts *ThreadState) UpdateAgg(win uint64, rec *stream.Record) error {
	ts.updates++
	if rec.Time > ts.wm {
		ts.wm = rec.Time
	}
	part, gen := ts.be.Owner(win, rec.Key)
	return ts.table(win, gen, part).UpdateAgg(rec)
}

// AppendBag is the stateful fast path for holistic state: append an element
// to key's bag in the thread-local fragment (§7.1.2).
func (ts *ThreadState) AppendBag(win uint64, key uint64, e *crdt.BagElem) error {
	ts.updates++
	if e.Time > ts.wm {
		ts.wm = e.Time
	}
	part, gen := ts.be.Owner(win, key)
	return ts.table(win, gen, part).AppendBag(key, e)
}

// ObserveTime advances the thread watermark for records that did not update
// state (e.g. filtered out), keeping progress flowing.
func (ts *ThreadState) ObserveTime(t stream.Watermark) {
	if t > ts.wm {
		ts.wm = t
	}
}

// Ingest accounts n ingested bytes and reports whether the epoch boundary
// was reached, in which case the caller should Flush. Epoch length is a
// data volume, matching the paper's 64 MB epochs (§8.1.1).
func (ts *ThreadState) Ingest(n int) bool {
	ts.pend += int64(n)
	return ts.pend >= ts.be.cfg.EpochBytes
}

// StateBytes returns the total log bytes held by this thread's fragments.
func (ts *ThreadState) StateBytes() int {
	total := 0
	for _, t := range ts.tables {
		total += t.LogBytes()
	}
	return total
}

// Flush runs the helper side of the synchronization phase (§7.2.2):
//
//  1. increment the epoch counter,
//  2. freeze each modified fragment (the executor thread owns the table, so
//     freezing is implicit in the synchronous flush),
//  3. transfer the delta — the raw log region — to each partition leader in
//     chunks over the RDMA channels, piggybacking the thread watermark,
//  4. invalidate the transferred fragments so later RMWs restart from the
//     CRDT identity.
//
// A heartbeat chunk goes to every leader so the vector clock advances even
// where no data flowed.
//
// A flush that returns an error may be retried (the recovery plane does,
// after the failed link is rebuilt): the retry keeps the same epoch and
// content — callers must not ingest between failure and retry — but bumps
// the thread incarnation, and because fragments serialize in sorted key
// order the retried chunk sequence is byte-identical, letting leaders drop
// exactly the prefix they already merged.
func (ts *ThreadState) Flush() error {
	if !ts.inFlight {
		ts.epoch++
		ts.flushes++
		ts.pend = 0
		ts.inFlight = true
		ts.dataDone = false
	} else {
		// Retrying the failed epoch: same content, next incarnation.
		ts.inc++
	}
	if !ts.dataDone {
		keys := ts.flushKeys[:0]
		for k := range ts.tables {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.win != b.win {
				return a.win < b.win
			}
			if a.part != b.part {
				return a.part < b.part
			}
			return a.gen < b.gen
		})
		ts.flushKeys = keys
		for _, key := range keys {
			tbl := ts.tables[key]
			if tbl.LogBytes() == 0 {
				continue
			}
			// Data chunks deliberately carry no watermark promise: the flush's
			// remaining chunks still hold records below ts.wm, so advancing the
			// leader's clock here could trigger a window whose data is still in
			// flight. The trailing heartbeat (sent last, FIFO behind all data)
			// carries the real watermark.
			c := Chunk{
				Window:    key.win,
				Epoch:     ts.epoch,
				Watermark: stream.NoWatermark,
				Gen:       key.gen,
				Thread:    ts.gtid,
				Partition: key.part,
				Kind:      ChunkData,
				Inc:       ts.inc,
			}
			err := tbl.SerializeDelta(ts.be.cfg.ChunkSize, func(region []byte) error {
				c.Payload = region
				ts.chunksSent++
				ts.bytesShipped += uint64(len(region))
				return ts.deliver(&c, key.part)
			})
			if err != nil {
				return err
			}
		}
		// Invalidate everything shipped (§7.2.2 step 4) and recycle the table
		// capacity for the next epoch's fragments.
		ts.invalidateCache()
		for k, t := range ts.tables {
			if len(ts.pool) < 64 {
				t.Reset()
				ts.pool = append(ts.pool, t)
			}
			delete(ts.tables, k)
		}
		ts.dataDone = true
	}
	// Heartbeats carry the watermark to every live leader. The peer set —
	// not the partition map — decides who hears heartbeats: a retired
	// leader keeps draining pre-cutover windows but is removed from the
	// peer set once covered, so no traffic targets a torn-down channel.
	hb := Chunk{Epoch: ts.epoch, Watermark: ts.wm, Gen: ts.be.pmap.CurrentGen(), Thread: ts.gtid, Kind: ChunkHeartbeat, Inc: ts.inc}
	for _, part := range ts.be.Peers() {
		hb.Partition = part
		if err := ts.deliver(&hb, part); err != nil {
			return err
		}
	}
	ts.inFlight = false
	return nil
}

// MaxWindow returns the highest window id this thread ingested state into
// and whether any window was touched at all. Only meaningful while the
// owning source task is quiesced or done (the controller's reconfiguration
// barrier) — those atomics order the cross-goroutine read.
func (ts *ThreadState) MaxWindow() (uint64, bool) { return ts.maxWin, ts.hasWin }

// Dirty reports whether the thread holds unflushed fragments or unaccounted
// epoch bytes — the controller's quiescence check before a reconfiguration
// cutover (a dirty thread could stamp a stale generation on a later flush).
func (ts *ThreadState) Dirty() bool {
	return len(ts.tables) > 0 || ts.pend > 0
}

// Epoch returns the thread's epoch counter (the epoch of the last flush).
func (ts *ThreadState) Epoch() uint64 { return ts.epoch }

// Inc returns the thread's current incarnation.
func (ts *ThreadState) Inc() uint8 { return ts.inc }

// RestoreProgress rewinds a fresh thread to journaled source progress: the
// epoch counter resumes so re-flushed epochs carry their original numbers
// (the leaders' commit tracking dedups them), the watermark resumes at the
// rewind point (re-ingested records re-derive it monotonically), and the
// incarnation is the restart's — callers pass the journaled incarnation
// plus one so leaders arm duplicate suppression on first contact.
func (ts *ThreadState) RestoreProgress(epoch uint64, wm stream.Watermark, inc uint8) {
	ts.epoch = epoch
	ts.wm = wm
	ts.inc = inc
}

// FinishStream flushes remaining state with a watermark of +infinity,
// letting every pending window trigger.
func (ts *ThreadState) FinishStream() error {
	ts.wm = math.MaxInt64
	return ts.Flush()
}

func (ts *ThreadState) deliver(c *Chunk, dest int) error {
	if dest == ts.be.cfg.Node {
		// Loopback: the local leader merges directly; no network transfer.
		return ts.be.HandleChunk(c)
	}
	s := ts.be.sender(dest)
	if s == nil {
		return fmt.Errorf("ssb: no sender for node %d", dest)
	}
	return s.Send(c)
}

// ThreadStats reports helper-side counters.
type ThreadStats struct {
	Updates      uint64
	Flushes      uint64
	ChunksSent   uint64
	BytesShipped uint64
}

// Stats snapshots the thread counters.
func (ts *ThreadState) Stats() ThreadStats {
	return ThreadStats{
		Updates:      ts.updates,
		Flushes:      ts.flushes,
		ChunksSent:   ts.chunksSent,
		BytesShipped: ts.bytesShipped,
	}
}
