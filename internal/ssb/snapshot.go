package ssb

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/slash-stream/slash/internal/stream"
)

// Epoch-based checkpointing. The paper observes that epoch protocols are
// the standard substrate for consistent snapshots (§7.2.2, citing Flink's
// and FASTER's checkpointing); this extension materializes that: because
// every helper fragment is empty at an epoch boundary and all in-flight
// state lives in the leaders' primary partitions, a leader-local snapshot
// taken between HandleChunk calls is a consistent cut of the distributed
// state. Snapshot and Restore serialize a Backend's primary partitions,
// vector clock, epoch counters, and triggered-window set; a restored
// backend resumes exactly where the snapshot was taken.

// snapshotMagic identifies the checkpoint format.
var snapshotMagic = [8]byte{'S', 'S', 'B', 'S', 'N', 'A', 'P', '1'}

// Errors returned by checkpointing.
var (
	ErrSnapshotFormat   = errors.New("ssb: malformed snapshot")
	ErrSnapshotMismatch = errors.New("ssb: snapshot does not match backend configuration")
)

// Snapshot writes a consistent checkpoint of the leader state to w. It
// must be called at an epoch boundary from the merge task's context (no
// concurrent HandleChunk/TriggerReady).
func (b *Backend) Snapshot(w io.Writer) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var scratch [8]byte
	writeU64 := func(v uint64) error {
		putU64(scratch[:], v)
		_, err := w.Write(scratch[:])
		return err
	}
	if _, err := w.Write(snapshotMagic[:]); err != nil {
		return err
	}
	holistic := uint64(0)
	if b.cfg.Agg == nil {
		holistic = 1
	}
	for _, v := range []uint64{uint64(b.cfg.Node), uint64(b.cfg.Nodes), uint64(b.cfg.ThreadsPerNode), holistic} {
		if err := writeU64(v); err != nil {
			return err
		}
	}
	// Vector clock entries.
	clock := b.clock.Snapshot()
	if err := writeU64(uint64(len(clock))); err != nil {
		return err
	}
	for _, wm := range clock {
		if err := writeU64(uint64(wm)); err != nil {
			return err
		}
	}
	// Per-sender epoch counters.
	if err := writeU64(uint64(len(b.lastEpoch))); err != nil {
		return err
	}
	for _, e := range b.lastEpoch {
		if err := writeU64(e); err != nil {
			return err
		}
	}
	// Triggered windows (sorted for deterministic snapshots).
	trig := make([]uint64, 0, len(b.triggered))
	for win := range b.triggered {
		trig = append(trig, win)
	}
	sort.Slice(trig, func(i, j int) bool { return trig[i] < trig[j] })
	if err := writeU64(uint64(len(trig))); err != nil {
		return err
	}
	for _, win := range trig {
		if err := writeU64(win); err != nil {
			return err
		}
	}
	// Primary partitions: window id + raw log (self-describing entries).
	wins := make([]uint64, 0, len(b.primary))
	for win := range b.primary {
		wins = append(wins, win)
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	if err := writeU64(uint64(len(wins))); err != nil {
		return err
	}
	for _, win := range wins {
		tbl := b.primary[win]
		if err := writeU64(win); err != nil {
			return err
		}
		if err := writeU64(uint64(tbl.LogBytes())); err != nil {
			return err
		}
		if _, err := w.Write(tbl.log); err != nil {
			return err
		}
	}
	return nil
}

// Restore loads a checkpoint previously written by Snapshot into this
// backend, replacing its leader state. The backend must be configured with
// the same deployment shape and CRDT kind as the snapshotted one.
func (b *Backend) Restore(r io.Reader) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
		}
		return getU64(scratch[:]), nil
	}
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("%w: bad magic", ErrSnapshotFormat)
	}
	hdr := make([]uint64, 4)
	for i := range hdr {
		v, err := readU64()
		if err != nil {
			return err
		}
		hdr[i] = v
	}
	holistic := uint64(0)
	if b.cfg.Agg == nil {
		holistic = 1
	}
	if hdr[0] != uint64(b.cfg.Node) || hdr[1] != uint64(b.cfg.Nodes) ||
		hdr[2] != uint64(b.cfg.ThreadsPerNode) || hdr[3] != holistic {
		return fmt.Errorf("%w: snapshot for node %d/%d (%d threads)", ErrSnapshotMismatch, hdr[0], hdr[1], hdr[2])
	}
	// Vector clock.
	n, err := readU64()
	if err != nil {
		return err
	}
	if n != uint64(b.cfg.Nodes*b.cfg.ThreadsPerNode) {
		return fmt.Errorf("%w: clock size %d", ErrSnapshotMismatch, n)
	}
	clock := make([]stream.Watermark, n)
	for i := range clock {
		v, err := readU64()
		if err != nil {
			return err
		}
		clock[i] = stream.Watermark(v)
	}
	// Epoch counters.
	n, err = readU64()
	if err != nil {
		return err
	}
	if n != uint64(len(b.lastEpoch)) {
		return fmt.Errorf("%w: epoch vector size %d", ErrSnapshotMismatch, n)
	}
	epochs := make([]uint64, n)
	for i := range epochs {
		if epochs[i], err = readU64(); err != nil {
			return err
		}
	}
	// Triggered windows.
	n, err = readU64()
	if err != nil {
		return err
	}
	triggered := make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		win, err := readU64()
		if err != nil {
			return err
		}
		triggered[win] = true
	}
	// Primary partitions.
	n, err = readU64()
	if err != nil {
		return err
	}
	primary := make(map[uint64]*Table, n)
	for i := uint64(0); i < n; i++ {
		win, err := readU64()
		if err != nil {
			return err
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		if size > maxLogSize {
			return fmt.Errorf("%w: table of %d bytes", ErrSnapshotFormat, size)
		}
		raw := make([]byte, size)
		if _, err := io.ReadFull(r, raw); err != nil {
			return fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
		}
		tbl := b.newTable()
		if err := tbl.mergeRawLog(raw); err != nil {
			return err
		}
		primary[win] = tbl
	}
	// Swap the restored state in atomically under the lock.
	fresh := make([]stream.Watermark, len(clock))
	copy(fresh, clock)
	b.clock.MergeSnapshot(fresh)
	b.lastEpoch = epochs
	b.triggered = triggered
	b.primary = primary
	return nil
}
