package ssb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// Table is one log-structured state fragment (§7.2.1): a hash index over a
// hybrid log of dense key-value entries. Aggregate tables keep one entry per
// key and update its value in place (RMW); bag tables append one entry per
// element and chain entries per key through the prev field. The log doubles
// as the wire format: an epoch delta is a raw log region, shipped without
// pointer chasing, and the log grows adaptively as partitions shift in size.
//
// A Table has a single writer (the owning executor thread, or the leader's
// merge task); that is the SSB's concurrency discipline, not a limitation —
// cross-thread merging happens through the epoch protocol.
type Table struct {
	agg  crdt.Aggregate // nil for holistic (bag) tables
	kind aggKind        // specialized dispatch for the built-in aggregates
	idx  *index
	log  []byte
	elem int // total entries appended (bag elements or agg groups)
	wire []byte // reusable scratch for the varint delta encoding
}

// Log entry layout:
//
//	offset 0:  key   uint64
//	offset 8:  prev  int32  (bag chain; -1 terminates; meaningless for agg)
//	offset 12: vlen  uint32
//	offset 16: value [vlen]byte
const entryHeaderSize = 16

const noPrev = int32(-1)

// maxLogSize bounds a single table's log so int32 offsets stay valid.
const maxLogSize = math.MaxInt32 - 1

// Errors returned by table operations.
var (
	ErrTableKind   = errors.New("ssb: operation does not match table kind")
	ErrChunkFormat = errors.New("ssb: malformed delta chunk")
	ErrLogOverflow = errors.New("ssb: table log exceeds 2 GiB")
)

// NewAggTable creates a table holding fixed-width aggregate state.
func NewAggTable(agg crdt.Aggregate) *Table {
	if agg == nil {
		panic("ssb: NewAggTable requires an aggregate")
	}
	return &Table{agg: agg, kind: kindOfAgg(agg), idx: newIndex()}
}

// NewBagTable creates a table holding grow-only bags of elements.
func NewBagTable() *Table {
	return &Table{idx: newIndex()}
}

// Holistic reports whether the table stores bags.
func (t *Table) Holistic() bool { return t.agg == nil }

// Keys returns the number of distinct keys.
func (t *Table) Keys() int { return t.idx.len() }

// Entries returns the number of log entries (for bags: total elements).
func (t *Table) Entries() int { return t.elem }

// LogBytes returns the size of the log, which is also the delta size the
// next epoch flush will ship.
func (t *Table) LogBytes() int { return len(t.log) }

// Log exposes the raw log for snapshot publication (self-describing entries;
// see the entry layout above). Read-only: the slice aliases the table's
// backing memory and is invalidated by the next append or Reset.
func (t *Table) Log() []byte { return t.log }

// appendEntry writes a new log entry and returns its offset.
func (t *Table) appendEntry(key uint64, prev int32, value []byte) (int32, error) {
	off, dst, err := t.appendBlank(key, prev, len(value))
	if err != nil {
		return 0, err
	}
	copy(dst, value)
	return off, nil
}

// appendBlank reserves a new log entry and returns its offset and the
// in-place value slice, avoiding a staging allocation on the hot path.
func (t *Table) appendBlank(key uint64, prev int32, vlen int) (int32, []byte, error) {
	need := entryHeaderSize + vlen
	off := len(t.log)
	if off+need > maxLogSize {
		return 0, nil, ErrLogOverflow
	}
	if cap(t.log) < off+need {
		// Grow geometrically with a floor so small tables do not churn
		// through many tiny reallocations as entries trickle in.
		c := 2 * cap(t.log)
		if c < 1024 {
			c = 1024
		}
		if c < off+need {
			c = off + need
		}
		if c > maxLogSize {
			c = maxLogSize
		}
		grown := make([]byte, off, c)
		copy(grown, t.log)
		t.log = grown
	}
	t.log = t.log[:off+need]
	e := t.log[off:]
	putU64(e[0:], key)
	putU32(e[8:], uint32(prev))
	putU32(e[12:], uint32(vlen))
	value := e[entryHeaderSize : entryHeaderSize+vlen]
	// Recycled capacity holds stale bytes; aggregate state must start zeroed.
	clear(value)
	t.elem++
	return int32(off), value, nil
}

// UpdateAgg folds rec into the aggregate state of rec.Key, creating the
// group on first touch. This is the per-record fast path (read-modify-write
// on the hybrid log).
func (t *Table) UpdateAgg(rec *stream.Record) error {
	if t.agg == nil {
		return ErrTableKind
	}
	slot, found := t.idx.lookupOrReserve(rec.Key)
	if found {
		t.agg.Update(t.valueAt(*slot), rec)
		return nil
	}
	off, value, err := t.appendBlank(rec.Key, noPrev, t.agg.Size())
	if err != nil {
		return err
	}
	t.agg.Init(value)
	t.agg.Update(value, rec)
	*slot = off
	return nil
}

// MergeAggValue merges an encoded partial aggregate into key's state (the
// CRDT join used when a leader absorbs helper deltas).
func (t *Table) MergeAggValue(key uint64, value []byte) error {
	if t.agg == nil {
		return ErrTableKind
	}
	if len(value) != t.agg.Size() {
		return fmt.Errorf("%w: value size %d for aggregate %s", ErrChunkFormat, len(value), t.agg.Name())
	}
	slot, found := t.idx.lookupOrReserve(key)
	if found {
		t.agg.Merge(t.valueAt(*slot), value)
		return nil
	}
	off, err := t.appendEntry(key, noPrev, value)
	if err != nil {
		return err
	}
	*slot = off
	return nil
}

// GetAgg returns the encoded aggregate state for key.
func (t *Table) GetAgg(key uint64) ([]byte, bool) {
	if t.agg == nil {
		return nil, false
	}
	off, ok := t.idx.get(key)
	if !ok {
		return nil, false
	}
	return t.valueAt(off), true
}

// AppendBag appends one element to key's bag (the holistic-window delta
// update: state only ever grows, §5.1).
func (t *Table) AppendBag(key uint64, e *crdt.BagElem) error {
	if t.agg != nil {
		return ErrTableKind
	}
	slot, found := t.idx.lookupOrReserve(key)
	prev := noPrev
	if found {
		prev = *slot
	}
	off, value, err := t.appendBlank(key, prev, crdt.BagElemSize)
	if err != nil {
		return err
	}
	crdt.EncodeBagElem(value, e)
	*slot = off
	return nil
}

// BagLen returns the number of elements in key's bag.
func (t *Table) BagLen(key uint64) int {
	n := 0
	off, ok := t.idx.get(key)
	for ok && off != noPrev {
		n++
		off = t.prevAt(off)
	}
	return n
}

// valueAt returns the value bytes of the entry at off.
func (t *Table) valueAt(off int32) []byte {
	vlen := getU32(t.log[off+12:])
	start := int(off) + entryHeaderSize
	return t.log[start : start+int(vlen)]
}

func (t *Table) prevAt(off int32) int32 {
	return int32(getU32(t.log[off+8:]))
}

// ForEachAgg visits every (key, state) pair of an aggregate table.
func (t *Table) ForEachAgg(fn func(key uint64, state []byte)) {
	t.idx.forEach(func(key uint64, off int32) {
		fn(key, t.valueAt(off))
	})
}

// forEachAggResult visits every key with its finalized aggregate result —
// the trigger emit loop, with the result decode dispatched once on the
// table's aggKind instead of an interface call per key. Must match the
// aggregate's Result exactly (see crdt): the identity for the four 8-byte
// kinds, sum/count (0 when empty) for Avg.
func (t *Table) forEachAggResult(fn func(key uint64, result int64)) {
	switch t.kind {
	case aggCount, aggSum, aggMin, aggMax:
		t.idx.forEach(func(key uint64, off int32) {
			fn(key, int64(getU64(t.log[off+entryHeaderSize:])))
		})
	case aggAvg:
		t.idx.forEach(func(key uint64, off int32) {
			state := t.log[off+entryHeaderSize:]
			count := int64(getU64(state[8:]))
			if count == 0 {
				fn(key, 0)
				return
			}
			fn(key, int64(getU64(state))/count)
		})
	default:
		agg := t.agg
		t.ForEachAgg(func(key uint64, state []byte) { fn(key, agg.Result(state)) })
	}
}

// ForEachBag visits every key with its collected bag elements. Elements are
// produced in reverse insertion order (the chain is walked from its head).
func (t *Table) ForEachBag(fn func(key uint64, elems []crdt.BagElem)) {
	var scratch []crdt.BagElem
	t.idx.forEach(func(key uint64, off int32) {
		scratch = scratch[:0]
		for off != noPrev {
			var e crdt.BagElem
			crdt.DecodeBagElem(t.valueAt(off), &e)
			scratch = append(scratch, e)
			off = t.prevAt(off)
		}
		fn(key, scratch)
	})
}

// Reset invalidates the table content (§7.2.2 step 4): after its delta has
// been transferred, a helper fragment restarts empty so RMW operations
// resume from the CRDT identity.
func (t *Table) Reset() {
	t.idx.reset()
	t.log = t.log[:0]
	t.elem = 0
}

// SerializeDelta emits the epoch's delta as chunk payloads of at most
// maxChunk bytes, split only at entry boundaries. Because helper fragments
// reset every epoch, the whole log is exactly the epoch's delta — no scan or
// pointer chasing is needed to find the changes (§7.2.1). Bag deltas ship
// raw log regions; aggregate deltas ship the compact varint encoding (see
// serializeAggDelta) — at bench-scale key densities it is 5-8x smaller than
// the log encoding, and on a throttled fabric the flush is wire-bound.
func (t *Table) SerializeDelta(maxChunk int, emit func(region []byte) error) error {
	if t.agg != nil {
		return t.serializeAggDelta(maxChunk, emit)
	}
	if maxChunk < entryHeaderSize {
		return fmt.Errorf("ssb: chunk size %d below entry header", maxChunk)
	}
	start, off := 0, 0
	for off < len(t.log) {
		size, err := t.entrySizeAt(off)
		if err != nil {
			return err
		}
		if size > maxChunk {
			return fmt.Errorf("ssb: entry of %d bytes exceeds chunk size %d", size, maxChunk)
		}
		if off+size-start > maxChunk {
			if err := emit(t.log[start:off]); err != nil {
				return err
			}
			start = off
		}
		off += size
	}
	if off > start {
		return emit(t.log[start:off])
	}
	return nil
}

// Aggregate delta chunk payload (the columnar wire format of an epoch's
// aggregate state):
//
//	count   uvarint — number of entries in this chunk
//	entries repeated count times:
//	  keyΔ  varint — signed delta from the previous entry's key (0 at
//	          chunk start; the log walk is insertion-ordered, not sorted,
//	          so deltas are zigzag-encoded rather than assumed ascending)
//	  state — by aggregate kind:
//	          count:       uvarint
//	          sum/min/max: varint
//	          avg:         varint sum, uvarint count
//	          generic:     Size() raw bytes
//
// Versus shipping raw log entries (16-byte header + fixed-width state), a
// typical count entry is ~3 bytes instead of 24. The encoding is a pure
// function of the log content and maxChunk, so a retried flush re-emits a
// byte-identical chunk sequence — the property the leaders' positional
// duplicate suppression relies on.
const (
	// maxVarint is the worst-case encoded size of one varint (uvarint of
	// a full 64-bit value).
	maxVarint = binary.MaxVarintLen64
	// aggChunkPad reserves room at the buffer head for the count prefix,
	// encoded once the chunk is full.
	aggChunkPad = maxVarint
)

// maxAggEntryWire returns the worst-case encoded entry size for this table.
func (t *Table) maxAggEntryWire() int {
	switch t.kind {
	case aggCount, aggSum, aggMin, aggMax:
		return 2 * maxVarint
	case aggAvg:
		return 3 * maxVarint
	default:
		return maxVarint + t.agg.Size()
	}
}

// aggChunkZeroPad seeds the count-prefix pad without allocating.
var aggChunkZeroPad [aggChunkPad]byte

// appendAggEntry encodes one log entry (key delta from base, then the
// kind-specific state) onto buf and returns the extended slice. A plain
// method rather than a closure keeps the hot serialization loop free of
// heap-escaping captured variables.
func (t *Table) appendAggEntry(buf []byte, key, base uint64, state []byte) []byte {
	buf = binary.AppendVarint(buf, int64(key-base))
	switch t.kind {
	case aggCount:
		buf = binary.AppendUvarint(buf, getU64(state))
	case aggSum, aggMin, aggMax:
		buf = binary.AppendVarint(buf, int64(getU64(state)))
	case aggAvg:
		buf = binary.AppendVarint(buf, int64(getU64(state)))
		buf = binary.AppendUvarint(buf, getU64(state[8:]))
	default:
		buf = append(buf, state...)
	}
	return buf
}

// finishAggChunk encodes the count prefix backwards into the pad so the
// payload is one contiguous region, and returns the emit-ready region.
func finishAggChunk(buf []byte, count int) []byte {
	var cv [maxVarint]byte
	n := binary.PutUvarint(cv[:], uint64(count))
	start := aggChunkPad - n
	copy(buf[start:], cv[:n])
	return buf[start:]
}

// serializeAggDelta walks the fixed-stride aggregate log and emits compact
// varint chunks. The scratch buffer persists on the table (tables are pooled
// and reused every epoch), so steady-state serialization allocates nothing.
func (t *Table) serializeAggDelta(maxChunk int, emit func(region []byte) error) error {
	asize := t.agg.Size()
	esize := entryHeaderSize + asize
	if maxChunk < aggChunkPad+t.maxAggEntryWire() {
		return fmt.Errorf("ssb: chunk size %d below aggregate entry bound", maxChunk)
	}
	if len(t.log)%esize != 0 {
		return ErrChunkFormat
	}
	buf := append(t.wire[:0], aggChunkZeroPad[:]...)
	count := 0
	var prevKey uint64
	for off := 0; off < len(t.log); off += esize {
		key := getU64(t.log[off:])
		state := t.log[off+entryHeaderSize : off+esize]
		mark := len(buf)
		buf = t.appendAggEntry(buf, key, prevKey, state)
		// The count prefix consumes at most the pad, so a payload fits
		// whenever the buffer (pad included) is within maxChunk.
		if len(buf) > maxChunk {
			// The entry overflowed the chunk: emit everything before it and
			// re-encode it at the head of the next chunk (its key delta is
			// relative to the fresh chunk's zero base).
			if err := emit(finishAggChunk(buf[:mark], count)); err != nil {
				t.wire = buf[:mark]
				return err
			}
			buf = append(buf[:0], aggChunkZeroPad[:]...)
			buf = t.appendAggEntry(buf, key, 0, state)
			count = 0
		}
		count++
		prevKey = key
	}
	var err error
	if count > 0 {
		err = emit(finishAggChunk(buf, count))
	}
	t.wire = buf
	return err
}

func (t *Table) entrySizeAt(off int) (int, error) {
	if off+entryHeaderSize > len(t.log) {
		return 0, ErrChunkFormat
	}
	vlen := int(getU32(t.log[off+12:]))
	if off+entryHeaderSize+vlen > len(t.log) {
		return 0, ErrChunkFormat
	}
	return entryHeaderSize + vlen, nil
}

// MergeDelta folds a delta chunk (produced by SerializeDelta, possibly on
// another node) into this table. Aggregate chunks carry the compact varint
// encoding and merge with CRDT semantics; bag chunks carry raw log entries
// that append, re-chained locally (incoming prev fields are ignored: they
// are only meaningful in the sender's log).
func (t *Table) MergeDelta(region []byte) error {
	if t.agg != nil {
		return t.mergeAggDelta(region)
	}
	return t.mergeRawLog(region)
}

// mergeRawLog folds a raw log region of self-describing header entries into
// the table — the bag chunk format, and the snapshot format for both table
// kinds (checkpoints store table logs verbatim).
func (t *Table) mergeRawLog(region []byte) error {
	off := 0
	for off < len(region) {
		if off+entryHeaderSize > len(region) {
			return ErrChunkFormat
		}
		key := getU64(region[off:])
		vlen := int(getU32(region[off+12:]))
		if off+entryHeaderSize+vlen > len(region) {
			return ErrChunkFormat
		}
		value := region[off+entryHeaderSize : off+entryHeaderSize+vlen]
		if t.agg != nil {
			if err := t.MergeAggValue(key, value); err != nil {
				return err
			}
		} else {
			if vlen != crdt.BagElemSize {
				return fmt.Errorf("%w: bag element of %d bytes", ErrChunkFormat, vlen)
			}
			var e crdt.BagElem
			crdt.DecodeBagElem(value, &e)
			if err := t.AppendBag(key, &e); err != nil {
				return err
			}
		}
		off += entryHeaderSize + vlen
	}
	return nil
}

// mergeAggDelta is the leader's merge hot loop: one pass over a compact
// varint chunk (see serializeAggDelta). The count prefix sizes the index and
// the log once up front, so the per-entry loop never rehashes or reallocates;
// merges dispatch on the table's aggKind jump table instead of an interface
// call per entry. Equivalent to MergeAggValue per decoded entry.
func (t *Table) mergeAggDelta(region []byte) error {
	asize := t.agg.Size()
	esize := entryHeaderSize + asize
	total, pos := binary.Uvarint(region)
	if pos <= 0 || total > uint64(len(region)) {
		return ErrChunkFormat
	}
	if n := int(total); n > 0 {
		// Worst case every entry is a new key: size the index once and make
		// room in the log, so the per-entry loop never grows either.
		t.idx.reserve(n)
		if need := len(t.log) + n*esize; need <= maxLogSize && need > cap(t.log) {
			if c := 2 * cap(t.log); c > need {
				need = c // keep growth geometric across chunks
			}
			grown := make([]byte, len(t.log), need)
			copy(grown, t.log)
			t.log = grown
		}
	}
	var prevKey uint64
	for n := uint64(0); n < total; n++ {
		dk, w := binary.Varint(region[pos:])
		if w <= 0 {
			return ErrChunkFormat
		}
		pos += w
		key := prevKey + uint64(dk)
		prevKey = key
		// Decode the incoming partial state. a carries the primary 8 bytes,
		// b the avg count word; generic aggregates pass raw bytes through.
		var a, b int64
		var raw []byte
		switch t.kind {
		case aggCount:
			u, w := binary.Uvarint(region[pos:])
			if w <= 0 {
				return ErrChunkFormat
			}
			a, pos = int64(u), pos+w
		case aggSum, aggMin, aggMax:
			v, w := binary.Varint(region[pos:])
			if w <= 0 {
				return ErrChunkFormat
			}
			a, pos = v, pos+w
		case aggAvg:
			v, w := binary.Varint(region[pos:])
			if w <= 0 {
				return ErrChunkFormat
			}
			a, pos = v, pos+w
			u, w := binary.Uvarint(region[pos:])
			if w <= 0 {
				return ErrChunkFormat
			}
			b, pos = int64(u), pos+w
		default:
			if pos+asize > len(region) {
				return ErrChunkFormat
			}
			raw = region[pos : pos+asize]
			pos += asize
		}
		slot, found := t.idx.lookupOrReserveHashed(key, mix64(key))
		var state []byte
		if found {
			state = t.valueAt(*slot)
		} else {
			eoff, value, err := t.appendBlank(key, noPrev, asize)
			if err != nil {
				return err
			}
			*slot = eoff
			state = value
			// The fresh entry starts at the merge identity; folding the
			// incoming partial below then reproduces it exactly. Generic
			// aggregates take the incoming partial verbatim instead — byte
			// equality with the sender's state, with no CRDT-law assumption.
			switch t.kind {
			case aggMin:
				putU64(state, uint64(math.MaxInt64))
			case aggMax:
				putU64(state, 1<<63) // MinInt64 bit pattern
			case aggGeneric:
				copy(state, raw)
				continue
			}
		}
		switch t.kind {
		case aggCount, aggSum:
			putU64(state, uint64(int64(getU64(state))+a))
		case aggMin:
			if a < int64(getU64(state)) {
				putU64(state, uint64(a))
			}
		case aggMax:
			if a > int64(getU64(state)) {
				putU64(state, uint64(a))
			}
		case aggAvg:
			putU64(state, uint64(int64(getU64(state))+a))
			putU64(state[8:], uint64(int64(getU64(state[8:]))+b))
		default:
			t.agg.Merge(state, raw)
		}
	}
	if pos != len(region) {
		return ErrChunkFormat
	}
	return nil
}

// appendRaw appends a pre-encoded log entry (header + value) verbatim and
// returns its offset.
func (t *Table) appendRaw(entry []byte) (int32, error) {
	if len(t.log)+len(entry) > maxLogSize {
		return 0, ErrLogOverflow
	}
	off := int32(len(t.log))
	t.log = append(t.log, entry...)
	t.elem++
	return off, nil
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
