package ssb

import (
	"errors"
	"fmt"
	"math"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// Table is one log-structured state fragment (§7.2.1): a hash index over a
// hybrid log of dense key-value entries. Aggregate tables keep one entry per
// key and update its value in place (RMW); bag tables append one entry per
// element and chain entries per key through the prev field. The log doubles
// as the wire format: an epoch delta is a raw log region, shipped without
// pointer chasing, and the log grows adaptively as partitions shift in size.
//
// A Table has a single writer (the owning executor thread, or the leader's
// merge task); that is the SSB's concurrency discipline, not a limitation —
// cross-thread merging happens through the epoch protocol.
type Table struct {
	agg  crdt.Aggregate // nil for holistic (bag) tables
	idx  *index
	log  []byte
	elem int // total entries appended (bag elements or agg groups)
}

// Log entry layout:
//
//	offset 0:  key   uint64
//	offset 8:  prev  int32  (bag chain; -1 terminates; meaningless for agg)
//	offset 12: vlen  uint32
//	offset 16: value [vlen]byte
const entryHeaderSize = 16

const noPrev = int32(-1)

// maxLogSize bounds a single table's log so int32 offsets stay valid.
const maxLogSize = math.MaxInt32 - 1

// Errors returned by table operations.
var (
	ErrTableKind   = errors.New("ssb: operation does not match table kind")
	ErrChunkFormat = errors.New("ssb: malformed delta chunk")
	ErrLogOverflow = errors.New("ssb: table log exceeds 2 GiB")
)

// NewAggTable creates a table holding fixed-width aggregate state.
func NewAggTable(agg crdt.Aggregate) *Table {
	if agg == nil {
		panic("ssb: NewAggTable requires an aggregate")
	}
	return &Table{agg: agg, idx: newIndex()}
}

// NewBagTable creates a table holding grow-only bags of elements.
func NewBagTable() *Table {
	return &Table{idx: newIndex()}
}

// Holistic reports whether the table stores bags.
func (t *Table) Holistic() bool { return t.agg == nil }

// Keys returns the number of distinct keys.
func (t *Table) Keys() int { return t.idx.len() }

// Entries returns the number of log entries (for bags: total elements).
func (t *Table) Entries() int { return t.elem }

// LogBytes returns the size of the log, which is also the delta size the
// next epoch flush will ship.
func (t *Table) LogBytes() int { return len(t.log) }

// appendEntry writes a new log entry and returns its offset.
func (t *Table) appendEntry(key uint64, prev int32, value []byte) (int32, error) {
	off, dst, err := t.appendBlank(key, prev, len(value))
	if err != nil {
		return 0, err
	}
	copy(dst, value)
	return off, nil
}

// appendBlank reserves a new log entry and returns its offset and the
// in-place value slice, avoiding a staging allocation on the hot path.
func (t *Table) appendBlank(key uint64, prev int32, vlen int) (int32, []byte, error) {
	need := entryHeaderSize + vlen
	if len(t.log)+need > maxLogSize {
		return 0, nil, ErrLogOverflow
	}
	off := int32(len(t.log))
	t.log = append(t.log, make([]byte, need)...)
	e := t.log[off:]
	putU64(e[0:], key)
	putU32(e[8:], uint32(prev))
	putU32(e[12:], uint32(vlen))
	t.elem++
	return off, e[entryHeaderSize : entryHeaderSize+vlen], nil
}

// UpdateAgg folds rec into the aggregate state of rec.Key, creating the
// group on first touch. This is the per-record fast path (read-modify-write
// on the hybrid log).
func (t *Table) UpdateAgg(rec *stream.Record) error {
	if t.agg == nil {
		return ErrTableKind
	}
	slot, found := t.idx.lookupOrReserve(rec.Key)
	if found {
		t.agg.Update(t.valueAt(*slot), rec)
		return nil
	}
	off, value, err := t.appendBlank(rec.Key, noPrev, t.agg.Size())
	if err != nil {
		return err
	}
	t.agg.Init(value)
	t.agg.Update(value, rec)
	*slot = off
	return nil
}

// MergeAggValue merges an encoded partial aggregate into key's state (the
// CRDT join used when a leader absorbs helper deltas).
func (t *Table) MergeAggValue(key uint64, value []byte) error {
	if t.agg == nil {
		return ErrTableKind
	}
	if len(value) != t.agg.Size() {
		return fmt.Errorf("%w: value size %d for aggregate %s", ErrChunkFormat, len(value), t.agg.Name())
	}
	slot, found := t.idx.lookupOrReserve(key)
	if found {
		t.agg.Merge(t.valueAt(*slot), value)
		return nil
	}
	off, err := t.appendEntry(key, noPrev, value)
	if err != nil {
		return err
	}
	*slot = off
	return nil
}

// GetAgg returns the encoded aggregate state for key.
func (t *Table) GetAgg(key uint64) ([]byte, bool) {
	if t.agg == nil {
		return nil, false
	}
	off, ok := t.idx.get(key)
	if !ok {
		return nil, false
	}
	return t.valueAt(off), true
}

// AppendBag appends one element to key's bag (the holistic-window delta
// update: state only ever grows, §5.1).
func (t *Table) AppendBag(key uint64, e *crdt.BagElem) error {
	if t.agg != nil {
		return ErrTableKind
	}
	slot, found := t.idx.lookupOrReserve(key)
	prev := noPrev
	if found {
		prev = *slot
	}
	off, value, err := t.appendBlank(key, prev, crdt.BagElemSize)
	if err != nil {
		return err
	}
	crdt.EncodeBagElem(value, e)
	*slot = off
	return nil
}

// BagLen returns the number of elements in key's bag.
func (t *Table) BagLen(key uint64) int {
	n := 0
	off, ok := t.idx.get(key)
	for ok && off != noPrev {
		n++
		off = t.prevAt(off)
	}
	return n
}

// valueAt returns the value bytes of the entry at off.
func (t *Table) valueAt(off int32) []byte {
	vlen := getU32(t.log[off+12:])
	start := int(off) + entryHeaderSize
	return t.log[start : start+int(vlen)]
}

func (t *Table) prevAt(off int32) int32 {
	return int32(getU32(t.log[off+8:]))
}

// ForEachAgg visits every (key, state) pair of an aggregate table.
func (t *Table) ForEachAgg(fn func(key uint64, state []byte)) {
	t.idx.forEach(func(key uint64, off int32) {
		fn(key, t.valueAt(off))
	})
}

// ForEachBag visits every key with its collected bag elements. Elements are
// produced in reverse insertion order (the chain is walked from its head).
func (t *Table) ForEachBag(fn func(key uint64, elems []crdt.BagElem)) {
	var scratch []crdt.BagElem
	t.idx.forEach(func(key uint64, off int32) {
		scratch = scratch[:0]
		for off != noPrev {
			var e crdt.BagElem
			crdt.DecodeBagElem(t.valueAt(off), &e)
			scratch = append(scratch, e)
			off = t.prevAt(off)
		}
		fn(key, scratch)
	})
}

// Reset invalidates the table content (§7.2.2 step 4): after its delta has
// been transferred, a helper fragment restarts empty so RMW operations
// resume from the CRDT identity.
func (t *Table) Reset() {
	t.idx.reset()
	t.log = t.log[:0]
	t.elem = 0
}

// SerializeDelta walks the log and emits raw entry regions of at most
// maxChunk bytes, split only at entry boundaries. Because helper fragments
// reset every epoch, the whole log is exactly the epoch's delta — no scan or
// pointer chasing is needed to find the changes (§7.2.1).
func (t *Table) SerializeDelta(maxChunk int, emit func(region []byte) error) error {
	if maxChunk < entryHeaderSize {
		return fmt.Errorf("ssb: chunk size %d below entry header", maxChunk)
	}
	start, off := 0, 0
	for off < len(t.log) {
		size, err := t.entrySizeAt(off)
		if err != nil {
			return err
		}
		if size > maxChunk {
			return fmt.Errorf("ssb: entry of %d bytes exceeds chunk size %d", size, maxChunk)
		}
		if off+size-start > maxChunk {
			if err := emit(t.log[start:off]); err != nil {
				return err
			}
			start = off
		}
		off += size
	}
	if off > start {
		return emit(t.log[start:off])
	}
	return nil
}

func (t *Table) entrySizeAt(off int) (int, error) {
	if off+entryHeaderSize > len(t.log) {
		return 0, ErrChunkFormat
	}
	vlen := int(getU32(t.log[off+12:]))
	if off+entryHeaderSize+vlen > len(t.log) {
		return 0, ErrChunkFormat
	}
	return entryHeaderSize + vlen, nil
}

// MergeDelta folds a raw entry region (produced by SerializeDelta, possibly
// on another node) into this table. Aggregate entries merge with CRDT
// semantics; bag entries append, re-chained locally. Incoming prev fields
// are ignored: they are only meaningful in the sender's log.
func (t *Table) MergeDelta(region []byte) error {
	off := 0
	for off < len(region) {
		if off+entryHeaderSize > len(region) {
			return ErrChunkFormat
		}
		key := getU64(region[off:])
		vlen := int(getU32(region[off+12:]))
		if off+entryHeaderSize+vlen > len(region) {
			return ErrChunkFormat
		}
		value := region[off+entryHeaderSize : off+entryHeaderSize+vlen]
		if t.agg != nil {
			if err := t.MergeAggValue(key, value); err != nil {
				return err
			}
		} else {
			if vlen != crdt.BagElemSize {
				return fmt.Errorf("%w: bag element of %d bytes", ErrChunkFormat, vlen)
			}
			var e crdt.BagElem
			crdt.DecodeBagElem(value, &e)
			if err := t.AppendBag(key, &e); err != nil {
				return err
			}
		}
		off += entryHeaderSize + vlen
	}
	return nil
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
