package ssb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

func TestIndexSetGet(t *testing.T) {
	ix := newIndex()
	if _, ok := ix.get(42); ok {
		t.Fatal("empty index returned a hit")
	}
	ix.set(42, 7)
	if off, ok := ix.get(42); !ok || off != 7 {
		t.Fatalf("get = %d,%v", off, ok)
	}
	ix.set(42, 9) // update
	if off, _ := ix.get(42); off != 9 {
		t.Fatalf("update lost: off = %d", off)
	}
	if ix.len() != 1 {
		t.Fatalf("len = %d", ix.len())
	}
}

func TestIndexGrowthAndOverflow(t *testing.T) {
	ix := newIndex()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		ix.set(i, int32(i))
	}
	if ix.len() != n {
		t.Fatalf("len = %d, want %d", ix.len(), n)
	}
	for i := uint64(0); i < n; i++ {
		off, ok := ix.get(i)
		if !ok || off != int32(i) {
			t.Fatalf("key %d: off=%d ok=%v", i, off, ok)
		}
	}
	seen := 0
	ix.forEach(func(key uint64, off int32) {
		if off != int32(key) {
			t.Fatalf("forEach key %d off %d", key, off)
		}
		seen++
	})
	if seen != n {
		t.Fatalf("forEach visited %d", seen)
	}
	ix.reset()
	if ix.len() != 0 {
		t.Fatal("reset did not clear")
	}
	if _, ok := ix.get(5); ok {
		t.Fatal("reset index returned a hit")
	}
}

// TestIndexOverflowChainRealloc regression-tests the overflow-array realloc
// hazard: when a chain already spans overflow buckets and appending the next
// one moves the array, the chain link must be written through the new backing
// store. The stale-pointer variant orphaned the appended bucket, silently
// losing its key from get, forEach, and grow's rehash — which surfaced as
// nondeterministic missing keys in triggered windows (leader tables are the
// only ones dense enough to chain).
func TestIndexOverflowChainRealloc(t *testing.T) {
	// Keys that collide in one bucket of the minimum-sized table. Staying far
	// below the grow threshold keeps the bucket count (and thus the collision
	// set) stable for the whole test.
	var keys []uint64
	target := mix64(0) & uint64(minBuckets-1)
	for k := uint64(0); len(keys) < 24; k++ {
		if mix64(k)&uint64(minBuckets-1) == target {
			keys = append(keys, k)
		}
	}
	for name, insert := range map[string]func(ix *index, key uint64, off int32){
		"set": func(ix *index, key uint64, off int32) { ix.set(key, off) },
		"lookupOrReserve": func(ix *index, key uint64, off int32) {
			slot, found := ix.lookupOrReserve(key)
			if found {
				t.Fatalf("key %d already present", key)
			}
			*slot = off
		},
	} {
		ix := newIndex()
		for i, k := range keys {
			insert(ix, k, int32(i))
		}
		if ix.len() != len(keys) {
			t.Fatalf("%s: len = %d, want %d", name, ix.len(), len(keys))
		}
		for i, k := range keys {
			off, ok := ix.get(k)
			if !ok || off != int32(i) {
				t.Fatalf("%s: key %d: off=%d ok=%v, want %d", name, k, off, ok, i)
			}
		}
		seen := 0
		ix.forEach(func(uint64, int32) { seen++ })
		if seen != len(keys) {
			t.Fatalf("%s: forEach visited %d of %d keys", name, seen, len(keys))
		}
	}
}

func TestIndexQuickMapEquivalence(t *testing.T) {
	prop := func(ops []struct {
		Key uint64
		Off int32
	}) bool {
		ix := newIndex()
		ref := map[uint64]int32{}
		for _, op := range ops {
			ix.set(op.Key, op.Off)
			ref[op.Key] = op.Off
		}
		if ix.len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := ix.get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAggTableUpdateAndGet(t *testing.T) {
	tbl := NewAggTable(crdt.Sum{})
	recs := []stream.Record{
		{Key: 1, V0: 10}, {Key: 2, V0: 5}, {Key: 1, V0: -3},
	}
	for i := range recs {
		if err := tbl.UpdateAgg(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	state, ok := tbl.GetAgg(1)
	if !ok || (crdt.Sum{}).Result(state) != 7 {
		t.Fatalf("key 1 state = %v ok=%v", state, ok)
	}
	if tbl.Keys() != 2 || tbl.Entries() != 2 {
		t.Fatalf("keys=%d entries=%d", tbl.Keys(), tbl.Entries())
	}
	if _, ok := tbl.GetAgg(99); ok {
		t.Fatal("phantom key")
	}
}

func TestTableKindMismatch(t *testing.T) {
	agg := NewAggTable(crdt.Count{})
	if err := agg.AppendBag(1, &crdt.BagElem{}); !errors.Is(err, ErrTableKind) {
		t.Fatalf("err = %v", err)
	}
	bag := NewBagTable()
	if err := bag.UpdateAgg(&stream.Record{}); !errors.Is(err, ErrTableKind) {
		t.Fatalf("err = %v", err)
	}
	if err := bag.MergeAggValue(1, []byte{1}); !errors.Is(err, ErrTableKind) {
		t.Fatalf("err = %v", err)
	}
}

func TestBagChaining(t *testing.T) {
	tbl := NewBagTable()
	for i := int64(0); i < 5; i++ {
		if err := tbl.AppendBag(7, &crdt.BagElem{Time: i, Val: i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	_ = tbl.AppendBag(8, &crdt.BagElem{Time: 100})
	if got := tbl.BagLen(7); got != 5 {
		t.Fatalf("BagLen(7) = %d", got)
	}
	if got := tbl.BagLen(8); got != 1 {
		t.Fatalf("BagLen(8) = %d", got)
	}
	if got := tbl.BagLen(9); got != 0 {
		t.Fatalf("BagLen(9) = %d", got)
	}
	var keys []uint64
	tbl.ForEachBag(func(key uint64, elems []crdt.BagElem) {
		keys = append(keys, key)
		if key == 7 {
			if len(elems) != 5 {
				t.Fatalf("key 7 has %d elems", len(elems))
			}
			// Reverse insertion order.
			for i, e := range elems {
				if e.Time != int64(4-i) {
					t.Fatalf("elem %d time %d", i, e.Time)
				}
			}
		}
	})
	if len(keys) != 2 {
		t.Fatalf("visited %d keys", len(keys))
	}
}

func TestSerializeMergeRoundTrip(t *testing.T) {
	src := NewAggTable(crdt.Sum{})
	rng := rand.New(rand.NewSource(3))
	want := map[uint64]int64{}
	for i := 0; i < 1000; i++ {
		r := stream.Record{Key: uint64(rng.Intn(100)), V0: rng.Int63n(100)}
		_ = src.UpdateAgg(&r)
		want[r.Key] += r.V0
	}
	dst := NewAggTable(crdt.Sum{})
	// Small chunks force many splits at entry boundaries.
	if err := src.SerializeDelta(64, dst.MergeDelta); err != nil {
		t.Fatal(err)
	}
	if dst.Keys() != len(want) {
		t.Fatalf("dst keys = %d, want %d", dst.Keys(), len(want))
	}
	dst.ForEachAgg(func(key uint64, state []byte) {
		if got := (crdt.Sum{}).Result(state); got != want[key] {
			t.Fatalf("key %d = %d, want %d", key, got, want[key])
		}
	})
}

func TestSerializeDeltaMergesIntoExistingState(t *testing.T) {
	a := NewAggTable(crdt.Count{})
	b := NewAggTable(crdt.Count{})
	for i := 0; i < 10; i++ {
		r := stream.Record{Key: uint64(i % 3)}
		_ = a.UpdateAgg(&r)
		_ = b.UpdateAgg(&r)
	}
	if err := a.SerializeDelta(1024, b.MergeDelta); err != nil {
		t.Fatal(err)
	}
	state, _ := b.GetAgg(0)
	// Key 0 appears 4 times in each table.
	if got := (crdt.Count{}).Result(state); got != 8 {
		t.Fatalf("merged count = %d, want 8", got)
	}
}

func TestBagSerializeMerge(t *testing.T) {
	src := NewBagTable()
	for i := int64(0); i < 20; i++ {
		_ = src.AppendBag(uint64(i%4), &crdt.BagElem{Time: i, Val: i, Side: uint8(i % 2)})
	}
	dst := NewBagTable()
	_ = dst.AppendBag(0, &crdt.BagElem{Time: 1000, Val: -1})
	if err := src.SerializeDelta(128, dst.MergeDelta); err != nil {
		t.Fatal(err)
	}
	if got := dst.BagLen(0); got != 6 { // 5 shipped + 1 pre-existing
		t.Fatalf("BagLen(0) = %d", got)
	}
	if got := dst.BagLen(1); got != 5 {
		t.Fatalf("BagLen(1) = %d", got)
	}
}

func TestSerializeChunkTooSmall(t *testing.T) {
	tbl := NewAggTable(crdt.Sum{})
	r := stream.Record{Key: 1, V0: 1}
	_ = tbl.UpdateAgg(&r)
	if err := tbl.SerializeDelta(4, func([]byte) error { return nil }); err == nil {
		t.Fatal("tiny chunk size accepted")
	}
	// Below the worst-case encoded entry bound (pad + 2 varints for sum).
	if err := tbl.SerializeDelta(aggChunkPad+2*maxVarint-1, func([]byte) error { return nil }); err == nil {
		t.Fatal("chunk smaller than one entry accepted")
	}
	bag := NewBagTable()
	_ = bag.AppendBag(1, &crdt.BagElem{Val: 1})
	if err := bag.SerializeDelta(entryHeaderSize-1, func([]byte) error { return nil }); err == nil {
		t.Fatal("bag chunk below entry header accepted")
	}
}

func TestMergeDeltaCorrupt(t *testing.T) {
	tbl := NewAggTable(crdt.Sum{})
	// Count prefix claims more entries than the chunk can hold.
	if err := tbl.MergeDelta([]byte{0xFF, 0x01}); !errors.Is(err, ErrChunkFormat) {
		t.Fatalf("err = %v", err)
	}
	// Truncated mid-entry: one entry promised, state varint missing.
	if err := tbl.MergeDelta([]byte{1, 2}); !errors.Is(err, ErrChunkFormat) {
		t.Fatalf("err = %v", err)
	}
	// Trailing garbage after the promised entries.
	if err := tbl.MergeDelta([]byte{1, 2, 2, 9, 9, 9}); !errors.Is(err, ErrChunkFormat) {
		t.Fatalf("err = %v", err)
	}
	bag := NewBagTable()
	// Header claims a huge value length.
	bad := make([]byte, entryHeaderSize)
	putU32(bad[12:], 5000)
	if err := bag.MergeDelta(bad); !errors.Is(err, ErrChunkFormat) {
		t.Fatalf("err = %v", err)
	}
	// Wrong element width for a bag.
	wrong := make([]byte, entryHeaderSize+8)
	putU32(wrong[12:], 8)
	if err := bag.MergeDelta(wrong); !errors.Is(err, ErrChunkFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestReset(t *testing.T) {
	tbl := NewAggTable(crdt.Sum{})
	r := stream.Record{Key: 5, V0: 9}
	_ = tbl.UpdateAgg(&r)
	tbl.Reset()
	if tbl.Keys() != 0 || tbl.LogBytes() != 0 || tbl.Entries() != 0 {
		t.Fatal("reset incomplete")
	}
	// RMW after reset restarts from the identity.
	_ = tbl.UpdateAgg(&r)
	state, _ := tbl.GetAgg(5)
	if got := (crdt.Sum{}).Result(state); got != 9 {
		t.Fatalf("post-reset sum = %d", got)
	}
}

// TestQuickDistributedAggEquivalence: splitting updates across k tables,
// serializing and merging into one must equal a sequential fold (P2 at the
// storage layer).
func TestQuickDistributedAggEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		tables := make([]*Table, k)
		for i := range tables {
			tables[i] = NewAggTable(crdt.Sum{})
		}
		oracle := map[uint64]int64{}
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			r := stream.Record{Key: uint64(rng.Intn(20)), V0: rng.Int63n(200) - 100}
			oracle[r.Key] += r.V0
			if err := tables[rng.Intn(k)].UpdateAgg(&r); err != nil {
				return false
			}
		}
		merged := NewAggTable(crdt.Sum{})
		for _, tbl := range tables {
			if err := tbl.SerializeDelta(96, merged.MergeDelta); err != nil {
				return false
			}
		}
		if merged.Keys() != len(oracle) {
			return false
		}
		ok := true
		merged.ForEachAgg(func(key uint64, state []byte) {
			if (crdt.Sum{}).Result(state) != oracle[key] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
