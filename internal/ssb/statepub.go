package ssb

// Queryable-state publication: the merge path's half of the stateq plane.
// Leaders expose their primary partitions to external readers by publishing
// snapshots — a window's raw table log plus routing metadata — through a
// StatePublisher. Publication rides the merge thread (HandleChunk marks
// windows dirty, the merge task calls PublishDirty between steps, and
// TriggerReady publishes the final sealed image before recycling the table),
// so it needs no reader-visible locking: the publisher's seqlock protocol
// (internal/stateq, docs/STATE_PROTOCOL.md) makes concurrent one-sided
// readers safe.

// StateAgg* name the finalization rule of published aggregate state on the
// wire (stateq slot flags, bits 8-15). They mirror the internal aggKind
// dispatch: clients finalize Count/Sum/Min/Max as the little-endian u64
// state reinterpreted as int64, and Avg as sum/count integer division (0
// when count is 0) — exactly what the trigger emit path computes.
const (
	StateAggGeneric = uint8(aggGeneric)
	StateAggCount   = uint8(aggCount)
	StateAggSum     = uint8(aggSum)
	StateAggMin     = uint8(aggMin)
	StateAggMax     = uint8(aggMax)
	StateAggAvg     = uint8(aggAvg)
)

// StateSnapshot is one publication unit: the self-describing raw log of a
// window's primary partition with the metadata a remote reader needs to
// locate, validate, and finalize it.
type StateSnapshot struct {
	// Window is the window id.
	Window uint64
	// Epoch is the leader's merge progress at publication: the maximum
	// sender epoch merged so far. It only ever grows for live snapshots of
	// the same window, giving readers a freshness ordinal.
	Epoch uint64
	// Gen is the partition-map generation governing the window.
	Gen uint64
	// Sealed marks a final snapshot: the window triggered and these bytes
	// equal the emitted result. Live (unsealed) snapshots are a consistent
	// but possibly stale prefix of the merge.
	Sealed bool
	// Holistic marks bag state (no client-side finalization rule).
	Holistic bool
	// AggKind is the StateAgg* finalization rule for aggregate state.
	AggKind uint8
	// Stride is the fixed log entry size of aggregate tables
	// (16-byte header + aggregate state size); 0 for holistic tables.
	Stride int
	// Keys is the number of distinct keys (= entries for aggregate tables).
	Keys int
	// Log is the raw table log. It aliases merge-owned memory and is valid
	// only for the duration of the PublishState call — publishers must copy.
	Log []byte
}

// StatePublisher receives window snapshots from the merge path. PublishState
// is called with the backend's mutex held and must not call back into the
// backend; it must copy Log before returning.
type StatePublisher interface {
	PublishState(s *StateSnapshot)
}

// SetStatePublisher attaches a publisher to this leader. Live windows are
// republished once at least minDeltaBytes of new deltas merged since their
// last publication (0 republishes on every merge step); sealed windows are
// always published at trigger time. Must be called before the merge task
// starts stepping.
func (b *Backend) SetStatePublisher(p StatePublisher, minDeltaBytes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.statePub = p
	b.stateMinDelta = minDeltaBytes
	b.stateDirty = make(map[uint64]int)
	b.statePublished = make(map[uint64]bool)
}

// markStateDirty accounts n freshly-merged delta bytes against win.
// Callers hold b.mu.
func (b *Backend) markStateDirty(win uint64, n int) {
	if b.statePub != nil {
		b.stateDirty[win] += n
	}
}

// PublishDirty publishes every live window whose unpublished delta volume
// crossed the republication threshold (and every window never published).
// The merge task calls it once per step, after TriggerReady; it is a no-op
// without a publisher.
func (b *Backend) PublishDirty() {
	if b.statePub == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for win, n := range b.stateDirty {
		tbl := b.primary[win]
		if tbl == nil {
			// Triggered (published sealed) or never materialized.
			delete(b.stateDirty, win)
			continue
		}
		if b.statePublished[win] && n < b.stateMinDelta {
			continue
		}
		b.publishStateLocked(win, tbl, false)
		b.statePublished[win] = true
		b.stateDirty[win] = 0
	}
}

// publishStateLocked hands one window's current table to the publisher.
// Callers hold b.mu.
func (b *Backend) publishStateLocked(win uint64, tbl *Table, sealed bool) {
	s := StateSnapshot{
		Window:   win,
		Epoch:    b.maxEpochLocked(),
		Gen:      b.pmap.GenFor(win),
		Sealed:   sealed,
		Holistic: tbl.agg == nil,
		AggKind:  uint8(tbl.kind),
		Keys:     tbl.Keys(),
		Log:      tbl.log,
	}
	if tbl.agg != nil {
		s.Stride = entryHeaderSize + tbl.agg.Size()
	}
	b.statePub.PublishState(&s)
}

// maxEpochLocked returns the highest sender epoch merged so far. Callers
// hold b.mu.
func (b *Backend) maxEpochLocked() uint64 {
	var m uint64
	for _, e := range b.lastEpoch {
		if e > m {
			m = e
		}
	}
	return m
}

// sealStateLocked publishes the final snapshot of a triggering window and
// retires its dirty tracking. Callers hold b.mu; must run before the table
// is recycled.
func (b *Backend) sealStateLocked(win uint64, tbl *Table) {
	if b.statePub == nil {
		return
	}
	b.publishStateLocked(win, tbl, true)
	delete(b.stateDirty, win)
	delete(b.statePublished, win)
}
