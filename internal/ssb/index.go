// Package ssb implements the Slash State Backend (§7): a distributed,
// concurrent key-value store for in-memory operator state. Each executor
// thread eagerly updates thread-local, log-structured fragments; at epoch
// boundaries fragments are shipped as raw delta chunks over RDMA channels to
// the partition's leader executor, which merges them with CRDT semantics.
// Vector-clock entries piggyback on the chunks so leaders can trigger
// event-time windows consistently (properties P1 and P2 of §5.1).
package ssb

// index is a FASTER-style hash index (§7.2.1): an array of multi-slot
// buckets chained through an overflow pool, mapping keys to offsets in the
// log-structured storage. Decoupling the index from storage keeps updates
// log-local (temporal locality) and lets delta detection avoid pointer
// chasing — the delta is simply a log region.
type index struct {
	buckets  []bucket
	overflow []bucket
	count    int
}

// slotsPerBucket × 16 bytes + occupancy/chain metadata ≈ one cache line per
// bucket, mirroring FASTER's 64-byte bucket design.
const slotsPerBucket = 4

type bucket struct {
	keys     [slotsPerBucket]uint64
	offs     [slotsPerBucket]int32
	occupied uint8
	next     int32 // 1-based index into overflow; 0 = end of chain
}

const minBuckets = 64

func newIndex() *index {
	return &index{buckets: make([]bucket, minBuckets)}
}

// mix64 is the splitmix64 finalizer, a strong cheap hash for 64-bit keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (ix *index) bucketFor(key uint64) int {
	return int(mix64(key) & uint64(len(ix.buckets)-1))
}

// get returns the log offset for key.
func (ix *index) get(key uint64) (int32, bool) {
	b := &ix.buckets[ix.bucketFor(key)]
	for {
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied&(1<<s) != 0 && b.keys[s] == key {
				return b.offs[s], true
			}
		}
		if b.next == 0 {
			return 0, false
		}
		b = &ix.overflow[b.next-1]
	}
}

// set inserts or updates the offset for key.
func (ix *index) set(key uint64, off int32) {
	if ix.count >= len(ix.buckets)*slotsPerBucket*3/4 {
		ix.grow()
	}
	b := &ix.buckets[ix.bucketFor(key)]
	var free *bucket
	freeSlot := -1
	tail := int32(0) // 1-based overflow position of b; 0 = b is the main bucket
	for {
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied&(1<<s) != 0 {
				if b.keys[s] == key {
					b.offs[s] = off
					return
				}
			} else if freeSlot < 0 {
				free, freeSlot = b, s
			}
		}
		if b.next == 0 {
			break
		}
		tail = b.next
		b = &ix.overflow[b.next-1]
	}
	if freeSlot < 0 {
		// Chain a fresh overflow bucket off the tail. The append may move the
		// overflow array, so when the tail is itself an overflow bucket the
		// link must be written through the array's new backing store — a write
		// through the stale pointer would orphan the new bucket (and its key)
		// from every chain walk, including grow's rehash.
		ix.overflow = append(ix.overflow, bucket{})
		if tail != 0 {
			b = &ix.overflow[tail-1]
		}
		b.next = int32(len(ix.overflow))
		free, freeSlot = &ix.overflow[len(ix.overflow)-1], 0
	}
	free.keys[freeSlot] = key
	free.offs[freeSlot] = off
	free.occupied |= 1 << freeSlot
	ix.count++
}

// lookupOrReserve finds key's slot, or claims a free slot for it, in a
// single chain walk — the upsert fast path of the per-record RMW. The
// returned pointer stays valid until the next set/lookupOrReserve call
// (growth rehashes in place before any slot is touched).
func (ix *index) lookupOrReserve(key uint64) (off *int32, found bool) {
	return ix.lookupOrReserveHashed(key, mix64(key))
}

// lookupOrReserveHashed is lookupOrReserve with the hash precomputed — the
// batch path hashes the whole key column in one tight loop and probes with
// the stored hashes. h must equal mix64(key).
func (ix *index) lookupOrReserveHashed(key, h uint64) (off *int32, found bool) {
	if ix.count >= len(ix.buckets)*slotsPerBucket*3/4 {
		ix.grow()
	}
	b := &ix.buckets[int(h&uint64(len(ix.buckets)-1))]
	var free *bucket
	freeSlot := -1
	tail := int32(0) // 1-based overflow position of b; 0 = b is the main bucket
	for {
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied&(1<<s) != 0 {
				if b.keys[s] == key {
					return &b.offs[s], true
				}
			} else if freeSlot < 0 {
				free, freeSlot = b, s
			}
		}
		if b.next == 0 {
			break
		}
		tail = b.next
		b = &ix.overflow[b.next-1]
	}
	if freeSlot < 0 {
		// See set: re-resolve the tail after append before linking.
		ix.overflow = append(ix.overflow, bucket{})
		if tail != 0 {
			b = &ix.overflow[tail-1]
		}
		b.next = int32(len(ix.overflow))
		free, freeSlot = &ix.overflow[len(ix.overflow)-1], 0
	}
	free.keys[freeSlot] = key
	free.occupied |= 1 << freeSlot
	ix.count++
	return &free.offs[freeSlot], false
}

// forEach visits every (key, offset) pair.
func (ix *index) forEach(fn func(key uint64, off int32)) {
	visit := func(b *bucket) {
		for s := 0; s < slotsPerBucket; s++ {
			if b.occupied&(1<<s) != 0 {
				fn(b.keys[s], b.offs[s])
			}
		}
	}
	for i := range ix.buckets {
		b := &ix.buckets[i]
		for {
			visit(b)
			if b.next == 0 {
				break
			}
			b = &ix.overflow[b.next-1]
		}
	}
}

// grow doubles the bucket array and rehashes.
func (ix *index) grow() { ix.growTo(len(ix.buckets) * 2) }

// reserve grows the bucket array so that n more keys fit without triggering
// growth — one rehash to the final size instead of a doubling cascade.
// Callers that know a batch's key count (the merge path knows the chunk's
// entry count) use it to keep growth off the per-entry loop.
func (ix *index) reserve(n int) {
	need := ix.count + n
	size := len(ix.buckets)
	for need >= size*slotsPerBucket*3/4 {
		size *= 2
	}
	if size > len(ix.buckets) {
		ix.growTo(size)
	}
}

func (ix *index) growTo(size int) {
	old := *ix
	ix.buckets = make([]bucket, size)
	ix.overflow = nil
	ix.count = 0
	old.forEach(func(key uint64, off int32) { ix.set(key, off) })
}

// reset clears the index, keeping the bucket array for reuse.
func (ix *index) reset() {
	for i := range ix.buckets {
		ix.buckets[i] = bucket{}
	}
	ix.overflow = ix.overflow[:0]
	ix.count = 0
}

// len returns the number of indexed keys.
func (ix *index) len() int { return ix.count }
