package ssb

import (
	"fmt"
)

// This file is the recoverable half of the state backend: epoch-aligned
// incremental checkpoints and the epoch-commit tracker that makes replayed
// traffic idempotent.
//
// The checkpoint design leans on the epoch protocol (§7.2.2) instead of
// quiescing: a leader's primary state is exactly the fold of the data chunks
// it merged, and chunks from one sender arrive FIFO, so the journal only has
// to record the inbound delta stream in merge order. A checkpoint record is
// "every payload merged since the previous record" — append-only, cheap, and
// consistent at any point between two HandleChunk calls, with no barrier and
// no cooperation from the helper threads. Replaying the journal in order
// rebuilds the table state, the trigger marks, the vector clock, and the
// tracker; everything merged after the last record is re-delivered by the
// controller's replay rings and deduplicated by the tracker.
//
// Commit rule: a sender's epoch E is committed at a leader once the trailing
// heartbeat of E arrives (heartbeats travel FIFO behind the epoch's data, so
// the heartbeat proves every data chunk of E was merged). Data chunks carry
// NoWatermark, so only commits advance the clock — which is what makes
// "replay everything above the committed epoch" sufficient.

// Journal receives a recoverable leader's durable records. The core engine
// implements it over a recovery.Store, stamping sequence numbers; tests use
// in-memory fakes. Calls are made with the backend lock held, in exactly the
// order a restore must replay them.
type Journal interface {
	// Checkpoint appends an incremental checkpoint: the opaque payload
	// (tracker state plus the delta log since the previous record), the
	// partition-map generation, and the vector clock at the cut.
	Checkpoint(gen uint64, clock []int64, payload []byte) error
	// Trigger appends a window-trigger mark.
	Trigger(gen uint64, win uint64) error
}

// threadEpoch is one sender thread's commit state at this leader.
type threadEpoch struct {
	// committed is the highest epoch whose trailing heartbeat arrived:
	// every data chunk of epochs <= committed is merged, so replayed chunks
	// at or below it are duplicates.
	committed uint64
	// cur / count identify the partially merged epoch: count data chunks of
	// epoch cur are in (FIFO makes cur <= committed+1). count is what
	// duplicate suppression skips when the epoch is re-sent.
	cur   uint64
	count uint32
	// inc is the highest sender incarnation seen. A bump means the sender
	// is re-sending the current epoch from the top (flush retry or node
	// restart); the already-merged prefix must be dropped positionally.
	inc uint8
	// skip / skipEpoch arm the positional drop: the next skip data chunks
	// of epoch skipEpoch are duplicates of the merged prefix. Sound because
	// flushes serialize fragments in sorted order, so a re-sent epoch is
	// byte-identical and each receiver sees the same subsequence again.
	skip      uint32
	skipEpoch uint64
}

// epochTracker is the per-leader recovery state: one threadEpoch per sender
// thread slot, plus checkpoint cadence and dedup accounting. Guarded by the
// backend mutex.
type epochTracker struct {
	threads []threadEpoch
	// sinceCkpt counts epoch commits since the last periodic checkpoint —
	// the controller's cadence signal (CheckpointDue).
	sinceCkpt int
	// deduped counts suppressed duplicate data chunks.
	deduped uint64
}

func newEpochTracker(threads int) *epochTracker {
	return &epochTracker{threads: make([]threadEpoch, threads)}
}

// handleChunkRecoverable is HandleChunk with the epoch-commit tracker in
// force. Callers hold b.mu and have bounds-checked c.Thread. Unlike the
// strict path it tolerates regressed epochs and chunks for triggered
// windows — both are the signature of post-failure replay, and both drop
// silently — while keeping the destination and generation checks hard
// errors (replay never changes routing).
func (b *Backend) handleChunkRecoverable(c *Chunk) error {
	t := &b.tracker.threads[c.Thread]
	if c.Inc > t.inc {
		// New sender incarnation: the current epoch restarts from its first
		// chunk, so arm the positional skip for the prefix already merged.
		t.inc = c.Inc
		t.skip = t.count
		t.skipEpoch = t.cur
	}
	if c.Kind == ChunkData {
		if c.Epoch <= t.committed {
			b.tracker.deduped++
			return nil
		}
		if c.Epoch == t.skipEpoch && t.skip > 0 {
			t.skip--
			b.tracker.deduped++
			return nil
		}
		if c.Epoch > t.cur {
			t.cur = c.Epoch
			t.count = 0
			t.skip = 0
		}
		if c.Partition != b.cfg.Node {
			return fmt.Errorf("%w: partition %d at leader %d", ErrBadDestination, c.Partition, b.cfg.Node)
		}
		if g := b.pmap.GenFor(c.Window); c.Gen != g {
			return fmt.Errorf("%w: window %d carries gen %d, map says %d", ErrStaleGeneration, c.Window, c.Gen, g)
		}
		if b.triggered[c.Window] {
			// A replayed chunk of a window that triggered before the crash.
			// Its content is already in the emitted result; dropping it
			// without counting is deterministic because live operation never
			// reaches here (P1: data beats the covering watermark).
			b.tracker.deduped++
			return nil
		}
		tbl := b.primary[c.Window]
		if tbl == nil {
			tbl = b.takeTable()
			b.primary[c.Window] = tbl
		}
		if err := tbl.MergeDelta(c.Payload); err != nil {
			return err
		}
		t.count++
		b.chunksMerged++
		b.bytesMerged += uint64(len(c.Payload))
		b.markStateDirty(c.Window, len(c.Payload))
		if b.cfg.Journal != nil {
			b.appendCkptLog(c.Window, c.Payload)
		}
	} else {
		if c.Epoch > t.committed {
			t.committed = c.Epoch
			b.tracker.sinceCkpt++
		}
		if t.committed >= t.cur {
			t.cur = t.committed
			t.count = 0
			t.skip = 0
		}
	}
	// Merging happens before the watermark becomes visible, so a trigger
	// that observes the new clock entry also observes the merged state.
	b.clock.Observe(c.Thread, c.Watermark)
	return nil
}

// appendCkptLog stages one merged delta in the pending checkpoint log:
// win u64 | len u32 | payload. Callers hold b.mu.
func (b *Backend) appendCkptLog(win uint64, payload []byte) {
	var hdr [12]byte
	putU64(hdr[0:], win)
	putU32(hdr[8:], uint32(len(payload)))
	b.ckptLog = append(b.ckptLog, hdr[:]...)
	b.ckptLog = append(b.ckptLog, payload...)
}

// trackerEntrySize is the encoded size of one threadEpoch:
// committed u64 | cur u64 | count u32 | inc u8.
const trackerEntrySize = 21

// encodeCheckpointLocked builds a checkpoint payload: u32 thread count, the
// tracker entries, then the staged delta log. Callers hold b.mu.
func (b *Backend) encodeCheckpointLocked() []byte {
	n := len(b.tracker.threads)
	out := make([]byte, 0, 4+n*trackerEntrySize+len(b.ckptLog))
	var hdr [4]byte
	putU32(hdr[:], uint32(n))
	out = append(out, hdr[:]...)
	for i := range b.tracker.threads {
		t := &b.tracker.threads[i]
		var e [trackerEntrySize]byte
		putU64(e[0:], t.committed)
		putU64(e[8:], t.cur)
		putU32(e[16:], t.count)
		e[20] = t.inc
		out = append(out, e[:]...)
	}
	return append(out, b.ckptLog...)
}

// flushCheckpointLocked writes the pending delta log as a checkpoint record
// and clears it. A journal error is latched (TriggerReady cannot return it);
// JournalErr surfaces it. No-op when nothing is staged — the durable state
// is already current. Callers hold b.mu.
func (b *Backend) flushCheckpointLocked() {
	if b.cfg.Journal == nil || len(b.ckptLog) == 0 {
		return
	}
	payload := b.encodeCheckpointLocked()
	if err := b.cfg.Journal.Checkpoint(b.pmap.CurrentGen(), b.clock.Snapshot(), payload); err != nil && b.jErr == nil {
		b.jErr = err
	}
	b.ckptLog = b.ckptLog[:0]
}

// Checkpoint writes a periodic checkpoint record — staged deltas or not —
// advancing the durable commit horizon, and returns the committed epoch per
// sender thread at the cut. The controller prunes its replay rings with
// exactly this vector: entries at or below it are durably folded into the
// journal and need never be replayed.
func (b *Backend) Checkpoint() ([]uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tracker == nil || b.cfg.Journal == nil {
		return nil, fmt.Errorf("ssb: node %d is not recoverable", b.cfg.Node)
	}
	payload := b.encodeCheckpointLocked()
	if err := b.cfg.Journal.Checkpoint(b.pmap.CurrentGen(), b.clock.Snapshot(), payload); err != nil {
		if b.jErr == nil {
			b.jErr = err
		}
		return nil, err
	}
	b.ckptLog = b.ckptLog[:0]
	b.tracker.sinceCkpt = 0
	committed := make([]uint64, len(b.tracker.threads))
	for i := range b.tracker.threads {
		committed[i] = b.tracker.threads[i].committed
	}
	return committed, nil
}

// CheckpointDue reports whether at least interval epoch commits landed since
// the last periodic checkpoint — the merge task's cadence check.
func (b *Backend) CheckpointDue(interval int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tracker != nil && b.tracker.sinceCkpt >= interval
}

// JournalErr returns the first journal-append failure, if any. Durability
// silently falling behind would void the recovery contract, so the merge
// task treats this as fatal.
func (b *Backend) JournalErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.jErr
}

// ChunksDeduped returns how many replayed duplicate data chunks the tracker
// suppressed (recovery accounting).
func (b *Backend) ChunksDeduped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tracker == nil {
		return 0
	}
	return b.tracker.deduped
}

// CommittedEpochs snapshots the committed epoch per sender thread.
func (b *Backend) CommittedEpochs() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tracker == nil {
		return nil
	}
	out := make([]uint64, len(b.tracker.threads))
	for i := range b.tracker.threads {
		out[i] = b.tracker.threads[i].committed
	}
	return out
}

// RestoreCheckpoint replays one checkpoint record into a fresh recoverable
// backend: merge the staged deltas in their original order, then overwrite
// the tracker and vector clock with the states stamped at the cut. Records
// must replay in journal order, interleaved with RestoreTrigger.
func (b *Backend) RestoreCheckpoint(clock []int64, payload []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tracker == nil {
		return fmt.Errorf("ssb: node %d is not recoverable", b.cfg.Node)
	}
	if len(payload) < 4 {
		return fmt.Errorf("%w: checkpoint record too short", ErrChunkFormat)
	}
	n := int(getU32(payload))
	if n != len(b.tracker.threads) {
		return fmt.Errorf("%w: checkpoint for %d threads, deployment has %d", ErrChunkFormat, n, len(b.tracker.threads))
	}
	off := 4
	if off+n*trackerEntrySize > len(payload) {
		return fmt.Errorf("%w: truncated tracker state", ErrChunkFormat)
	}
	trackerState := payload[off : off+n*trackerEntrySize]
	off += n * trackerEntrySize
	// Delta events, in merge order.
	for off < len(payload) {
		if off+12 > len(payload) {
			return fmt.Errorf("%w: truncated checkpoint event", ErrChunkFormat)
		}
		win := getU64(payload[off:])
		plen := int(getU32(payload[off+8:]))
		off += 12
		if off+plen > len(payload) {
			return fmt.Errorf("%w: checkpoint event overflows record", ErrChunkFormat)
		}
		if !b.triggered[win] {
			tbl := b.primary[win]
			if tbl == nil {
				tbl = b.takeTable()
				b.primary[win] = tbl
			}
			if err := tbl.MergeDelta(payload[off : off+plen]); err != nil {
				return err
			}
		}
		off += plen
	}
	for i := range b.tracker.threads {
		e := trackerState[i*trackerEntrySize:]
		t := &b.tracker.threads[i]
		t.committed = getU64(e[0:])
		t.cur = getU64(e[8:])
		t.count = getU32(e[16:])
		t.inc = e[20]
		t.skip, t.skipEpoch = 0, 0
	}
	b.clock.RestoreSnapshot(clock)
	return nil
}

// RestoreTrigger replays one window-trigger mark: the window fired and its
// results were emitted before the crash, so the restore discards its state
// and never re-emits it.
func (b *Backend) RestoreTrigger(win uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tracker == nil {
		return fmt.Errorf("ssb: node %d is not recoverable", b.cfg.Node)
	}
	if tbl := b.primary[win]; tbl != nil {
		b.putTable(tbl)
		delete(b.primary, win)
	}
	b.triggered[win] = true
	b.windowsOutput++
	return nil
}

// FinishRestore completes a journal replay: for every sender thread the
// partially merged epoch's prefix (count chunks of epoch cur) is armed for
// positional skip, because the controller's replay rings retain and will
// re-deliver those very chunks — pruning only advances at checkpoint
// granularity. Chunks above the prefix merge normally.
func (b *Backend) FinishRestore() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tracker == nil {
		return
	}
	for i := range b.tracker.threads {
		t := &b.tracker.threads[i]
		t.skip = t.count
		t.skipEpoch = t.cur
	}
	b.tracker.sinceCkpt = 0
}

// EncodeTriggerPayload encodes a trigger record's payload (the window id),
// keeping the journal wire format owned by this package.
func EncodeTriggerPayload(win uint64) []byte {
	var p [8]byte
	putU64(p[:], win)
	return p[:]
}

// DecodeTriggerPayload parses a trigger record's payload.
func DecodeTriggerPayload(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: trigger record of %d bytes", ErrChunkFormat, len(p))
	}
	return getU64(p), nil
}
