package ssb

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/slash-stream/slash/internal/crdt"
	"github.com/slash-stream/slash/internal/stream"
)

// TestPartitionDistribution is the regression test for the modulo→multiply-
// shift bugfix: strided key populations (YSB campaign ids are dense small
// integers and multiples, §8.2.1) must spread evenly over every partition
// count, including the non-power-of-two ones a plain `key % n` of strided
// keys collapses on.
func TestPartitionDistribution(t *testing.T) {
	const keys = 100000
	populations := map[string]func(i int) uint64{
		"sequential": func(i int) uint64 { return uint64(i) },
		"stride16":   func(i int) uint64 { return uint64(i) * 16 },
		"stride1000": func(i int) uint64 { return uint64(i) * 1000 },
		"uniform": func() func(i int) uint64 {
			rng := rand.New(rand.NewSource(7))
			return func(int) uint64 { return rng.Uint64() }
		}(),
	}
	for _, n := range []int{3, 4, 5, 7, 8, 16} {
		for name, gen := range populations {
			counts := make([]int, n)
			for i := 0; i < keys; i++ {
				p := partitionIndex(PartitionHash(gen(i)), n)
				if p < 0 || p >= n {
					t.Fatalf("n=%d %s: index %d out of range", n, name, p)
				}
				counts[p]++
			}
			want := float64(keys) / float64(n)
			for p, c := range counts {
				if dev := float64(c)/want - 1; dev > 0.05 || dev < -0.05 {
					t.Errorf("n=%d %s: partition %d holds %d of %d keys (%.1f%% off uniform)",
						n, name, p, c, keys, dev*100)
				}
			}
		}
	}
}

// TestModuloSkewMotivation documents the bug the hash fixes: with 16-strided
// keys, `key % 16` maps everything to partition 0.
func TestModuloSkewMotivation(t *testing.T) {
	const n = 16
	counts := make([]int, n)
	for i := 0; i < 1000; i++ {
		counts[(uint64(i)*16)%n]++
	}
	if counts[0] != 1000 {
		t.Fatalf("modulo of stride-16 keys should collapse onto partition 0, got %v", counts)
	}
	// The multiply-shift hash does not collapse.
	counts = make([]int, n)
	for i := 0; i < 1000; i++ {
		counts[partitionIndex(PartitionHash(uint64(i)*16), n)]++
	}
	for p, c := range counts {
		if c == 1000 {
			t.Fatalf("multiply-shift collapsed stride-16 keys onto partition %d", p)
		}
	}
}

func TestPartitionMapInstallOrdering(t *testing.T) {
	m := StaticPartitionMap(4)
	if g := m.Current(); g.Gen != 0 || g.FromWindow != 0 || len(g.Active) != 4 {
		t.Fatalf("static map current = %+v", g)
	}
	if err := m.Install(Generation{Gen: 2, FromWindow: 5, Active: []int{0, 1}}); !errors.Is(err, ErrGenOrder) {
		t.Fatalf("gen skip err = %v", err)
	}
	if err := m.Install(Generation{Gen: 1, FromWindow: 5, Active: nil}); !errors.Is(err, ErrEmptyGeneration) {
		t.Fatalf("empty gen err = %v", err)
	}
	if err := m.Install(Generation{Gen: 1, FromWindow: 5, Active: []int{0, 1, 2, 3, 4, 5}}); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := m.Install(Generation{Gen: 2, FromWindow: 3, Active: []int{0, 1}}); !errors.Is(err, ErrGenOrder) {
		t.Fatalf("cutover regression err = %v", err)
	}
	if err := m.Install(Generation{Gen: 2, FromWindow: 5, Active: []int{0, 1, 2, 3}}); err != nil {
		t.Fatalf("same-cutover install: %v", err)
	}
	if got := m.CurrentGen(); got != 2 {
		t.Fatalf("CurrentGen = %d", got)
	}
	if got := len(m.Snapshot()); got != 3 {
		t.Fatalf("Snapshot len = %d", got)
	}
}

// TestOwnerStableAcrossInstalls is the zero-migration property: once a
// window's governing generation is fixed, installing later generations never
// changes any (window, key) owner below the new cutover.
func TestOwnerStableAcrossInstalls(t *testing.T) {
	m := StaticPartitionMap(4)
	type wk struct{ win, key uint64 }
	before := map[wk]int{}
	for win := uint64(0); win < 10; win++ {
		for key := uint64(0); key < 200; key++ {
			n, gen := m.Owner(win, key)
			if gen != 0 {
				t.Fatalf("pre-install gen = %d", gen)
			}
			before[wk{win, key}] = n
		}
	}
	if err := m.Install(Generation{Gen: 1, FromWindow: 6, Active: []int{0, 1, 2, 3, 4, 5, 6, 7}}); err != nil {
		t.Fatal(err)
	}
	for win := uint64(0); win < 6; win++ {
		for key := uint64(0); key < 200; key++ {
			n, gen := m.Owner(win, key)
			if gen != 0 || n != before[wk{win, key}] {
				t.Fatalf("window %d key %d moved: %d→%d (gen %d)", win, key, before[wk{win, key}], n, gen)
			}
		}
	}
	moved := false
	for key := uint64(0); key < 200; key++ {
		n, gen := m.Owner(7, key)
		if gen != 1 {
			t.Fatalf("post-cutover gen = %d", gen)
		}
		if n != before[wk{7, key}] {
			moved = true
		}
		if !m.ActiveIn(7, n) {
			t.Fatalf("owner %d not active in window 7", n)
		}
	}
	if !moved {
		t.Fatal("doubling the node set moved no post-cutover key")
	}
	if m.GenFor(5) != 0 || m.GenFor(6) != 1 {
		t.Fatalf("GenFor boundary: %d %d", m.GenFor(5), m.GenFor(6))
	}
}

// TestBackendStaleGeneration checks the loud-failure invariant: a data chunk
// stamped with a generation that no longer governs its window is rejected.
func TestBackendStaleGeneration(t *testing.T) {
	bs := newCluster(t, 2, 1, crdt.Sum{}, fixedWindowEnd)
	ts := bs[0].Thread(0)
	if err := ts.UpdateAgg(3, &stream.Record{Key: 1, V0: 1, Time: 10}); err != nil {
		t.Fatal(err)
	}
	// Install a generation cutting over at window 0 on every map while the
	// fragment is still unflushed: the flush must be rejected loudly.
	for _, b := range bs {
		if err := b.Map().Install(Generation{Gen: 1, FromWindow: 0, Active: []int{0, 1}}); err != nil {
			t.Fatal(err)
		}
	}
	err := ts.Flush()
	if err == nil || !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("stale flush err = %v, want ErrStaleGeneration", err)
	}
}
