#!/usr/bin/env bash
# Multi-process differential smoke: the same workload runs once in-process
# (the oracle) and once as a real 3-process slashd cluster over the TCP-framed
# verbs backend, and the two canonical row dumps must be byte-identical.
# Phase 2 repeats the cluster run with chaos: rank 2 is SIGKILLed once its
# journal shows real progress, respawned against the same journal dir, and the
# merged output must still match the oracle byte-for-byte after the voted
# restart + restore + replay sequence.
#
# All process logs land under the work dir (printed on entry, kept on
# failure) so CI can upload them as artifacts.
#
# Usage: scripts/multiproc-smoke.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="${1:-$(mktemp -d /tmp/multiproc-smoke.XXXXXX)}"
mkdir -p "$WORK"
BIN="$WORK/slashd"
echo "multiproc-smoke: work dir $WORK" >&2

go build -o "$BIN" ./cmd/slashd

# wait_addr <stderr-log>: extract the coordinator's bound address once it is
# listening (it logs "cluster on HOST:PORT").
wait_addr() {
  local log="$1" addr="" i
  for i in $(seq 1 100); do
    addr=$(grep -o 'cluster on [0-9.:]*' "$log" 2>/dev/null | awk '{print $3}' || true)
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  echo "multiproc-smoke: coordinator never bound (see $log)" >&2
  return 1
}

fail() {
  echo "multiproc-smoke: FAIL: $*" >&2
  echo "multiproc-smoke: logs kept in $WORK" >&2
  exit 1
}

# ---- oracle ---------------------------------------------------------------
# Phase 1 and phase 2 share one spec (and therefore one oracle dump): small
# epochs so the chaos kill lands mid-run with journaled progress to restore.
WL=nb7 NODES=3 THREADS=2 RECORDS=20000 SEED=7 EPOCH=8192
"$BIN" -workload $WL -nodes $NODES -threads $THREADS -records $RECORDS \
  -seed $SEED -epoch $EPOCH -dump "$WORK/oracle.rows" \
  >"$WORK/oracle.out" 2>"$WORK/oracle.err" || fail "oracle run (see oracle.err)"

run_cluster() { # run_cluster <phase> <chaos:0|1>
  local phase="$1" chaos="$2" addr pids=() r
  "$BIN" -listen 127.0.0.1:0 -workload $WL -nodes $NODES -threads $THREADS \
    -records $RECORDS -seed $SEED -epoch $EPOCH -dump "$WORK/$phase.rows" \
    >"$WORK/$phase-coord.out" 2>"$WORK/$phase-coord.err" &
  local coord=$!
  addr=$(wait_addr "$WORK/$phase-coord.err") || fail "$phase: no coordinator address"
  for r in $(seq 0 $((NODES - 1))); do
    "$BIN" -join "$addr" -rank "$r" -checkpoint-dir "$WORK/$phase-journal-$r" \
      >"$WORK/$phase-worker$r.out" 2>"$WORK/$phase-worker$r.err" &
    pids[r]=$!
  done

  if [ "$chaos" = 1 ]; then
    # Kill rank 2 only after its journal holds real progress, so the restore
    # path rebuilds state instead of rerunning from scratch.
    local victim=2 size=0 i
    local journal="$WORK/$phase-journal-$victim/node00$victim.journal"
    for i in $(seq 1 300); do
      size=$(stat -c %s "$journal" 2>/dev/null || echo 0)
      [ "$size" -ge 4096 ] && break
      kill -0 "$coord" 2>/dev/null || fail "$phase: coordinator exited before the kill"
      sleep 0.05
    done
    [ "$size" -ge 4096 ] || fail "$phase: victim journal never grew ($size bytes)"
    kill -9 "${pids[$victim]}" 2>/dev/null || true
    disown "${pids[$victim]}" 2>/dev/null || true # keep bash's job-kill notice out of the log
    echo "multiproc-smoke: $phase: SIGKILLed rank $victim at journal size $size" >&2
    sleep 0.2
    "$BIN" -join "$addr" -rank "$victim" -checkpoint-dir "$WORK/$phase-journal-$victim" \
      >"$WORK/$phase-respawn.out" 2>"$WORK/$phase-respawn.err" &
    pids[victim]=$!
  fi

  wait "$coord" || fail "$phase: coordinator exited non-zero (see $phase-coord.err)"
  for r in $(seq 0 $((NODES - 1))); do
    wait "${pids[$r]}" || fail "$phase: worker $r exited non-zero (see $phase-worker$r.err)"
  done
  diff "$WORK/oracle.rows" "$WORK/$phase.rows" >"$WORK/$phase.diff" ||
    fail "$phase: cluster output diverges from oracle (see $phase.diff)"
  echo "multiproc-smoke: $phase: $(wc -l < "$WORK/$phase.rows") rows byte-identical to oracle" >&2
}

run_cluster clean 0
run_cluster chaos 1
grep -q 'voted restarts' "$WORK/chaos-coord.out" || true
restarts=$(awk '/voted restarts/ { print $2 }' "$WORK/chaos-coord.out")
[ "${restarts:-0}" -ge 1 ] || fail "chaos: expected >=1 voted restart, got '${restarts:-none}'"

echo "multiproc-smoke: PASS (clean + chaos with $restarts voted restart(s))" >&2
rm -rf "$WORK"
