#!/usr/bin/env bash
# Coverage gate: the combined statement coverage of the load-bearing
# packages (core, ssb, rdma, channel, plus the stream wire formats, the
# workload generators feeding the batch hot loop, the stateq
# queryable-state plane, and the netfab/cluster multi-process transport and
# control plane) must not sink below the floor, and the recovery
# package — the journal format every restore depends
# on — must stay at or above 80%. Prints a per-package table; appends it to
# the GitHub job summary when running in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

# The floor was re-based when netfab+cluster joined the denominator (the
# control plane's error paths are exercised by the multiproc smoke, not unit
# tests); ratchet it up as the new packages gain coverage.
COMBINED_FLOOR="${COMBINED_FLOOR:-81.5}"
RECOVERY_FLOOR="${RECOVERY_FLOOR:-80.0}"
PROFILE=$(mktemp /tmp/coverage-XXXXXX.out)
trap 'rm -f "$PROFILE"' EXIT

go test -coverprofile="$PROFILE" \
  ./internal/core/ ./internal/ssb/ ./internal/rdma/ ./internal/channel/ \
  ./internal/stream/ ./internal/workload/ ./internal/stateq/ \
  ./internal/netfab/ ./internal/cluster/
combined=$(go tool cover -func="$PROFILE" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
recovery=$(go test -cover ./internal/recovery/ |
  awk '{ for (i = 1; i <= NF; i++) if ($i == "coverage:") { sub(/%/, "", $(i + 1)); print $(i + 1) } }')

table=$(printf 'package group                        coverage  floor\n')
table+=$(printf '\nhot path + netfab + cluster combined%6s%%   %s%%' "$combined" "$COMBINED_FLOOR")
table+=$(printf '\ninternal/recovery                    %6s%%   %s%%' "$recovery" "$RECOVERY_FLOOR")
echo "$table"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  { echo '```'; echo "$table"; echo '```'; } >> "$GITHUB_STEP_SUMMARY"
fi

fail=0
if awk -v c="$combined" -v f="$COMBINED_FLOOR" 'BEGIN { exit !(c < f) }'; then
  echo "FAIL: combined hot-path package coverage $combined% is below the $COMBINED_FLOOR% floor" >&2
  fail=1
fi
if awk -v c="$recovery" -v f="$RECOVERY_FLOOR" 'BEGIN { exit !(c < f) }'; then
  echo "FAIL: internal/recovery coverage $recovery% is below the $RECOVERY_FLOOR% floor" >&2
  fail=1
fi
exit "$fail"
