#!/usr/bin/env bash
# Runs the figure benchmarks plus the verbs/channel microbenchmarks and emits
# a machine-readable perf snapshot so the repo's performance trajectory is
# tracked PR over PR.
#
# Usage: scripts/bench.sh [output.json]     (default: BENCH_PR10.json)
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR10.json}"

echo "# figure benchmarks (-benchtime=1x)" >&2
FIG=$(go test -run xxx -bench Fig -benchtime=1x . | grep '^Benchmark' || true)
echo "$FIG" >&2

echo "# microbenchmarks (-benchtime=0.2s -benchmem)" >&2
# netfab's 4KB-transfer row records the cross-process (TCP loopback) baseline
# next to the in-process one — informational, the wire sets the floor there.
MICRO=$(go test -run xxx -bench . -benchtime=0.2s -benchmem ./internal/rdma/ ./internal/channel/ ./internal/core/ ./internal/stateq/ ./internal/netfab/ | grep '^Benchmark' || true)
echo "$MICRO" >&2

# Fault-off guard: with no injector configured the failure plane must cost
# nothing on the hot path — the 4KB channel transfer stays allocation-free.
ALLOCS=$(printf '%s\n' "$MICRO" | awk '
  $1 ~ /^BenchmarkChannelTransfer\/slot=4KB/ {
    for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i - 1)
  }')
if [ "${ALLOCS:-missing}" != "0" ]; then
  echo "FAIL: BenchmarkChannelTransfer/slot=4KB allocs/op = ${ALLOCS:-missing}, want 0 with fault injection disabled" >&2
  exit 1
fi
echo "# fault-off guard ok: 4KB transfer is allocation-free" >&2

{
  printf '{\n  "generated": "%s",\n  "benchmarks": {\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '%s\n%s\n' "$FIG" "$MICRO" | awk '
    /^Benchmark/ {
      name = $1
      sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
      entry = ""
      for (i = 2; i <= NF; i++) {
        v = $(i - 1)
        if ($i == "ns/op")                entry = entry "\"ns_per_op\": " v ", "
        else if ($i == "slash_rec/s")     entry = entry "\"rec_per_s\": " v ", "
        else if ($i == "slash_model_Mrec/s") entry = entry "\"model_mrec_per_s\": " v ", "
        else if ($i == "rec/s")           entry = entry "\"rec_per_s\": " v ", "
        else if ($i == "ns/rec")          entry = entry "\"ns_per_rec\": " v ", "
        else if ($i == "MB/s")            entry = entry "\"mb_per_s\": " v ", "
        else if ($i == "B/op")            entry = entry "\"bytes_per_op\": " v ", "
        else if ($i == "allocs/op")       entry = entry "\"allocs_per_op\": " v ", "
        else if ($i == "credit_writes/op") entry = entry "\"credit_writes_per_op\": " v ", "
      }
      sub(/, $/, "", entry)
      if (seen++) printf ",\n"
      printf "    \"%s\": {%s}", name, entry
    }
    END { printf "\n" }
  '
  printf '  }\n}\n'
} > "$OUT"
echo "wrote $OUT" >&2
