#!/usr/bin/env bash
# check-links.sh — verify that every relative markdown link in the repo's
# documentation points at a file that exists. Pure bash + grep, no
# dependencies; run from anywhere inside the repo.
#
#   scripts/check-links.sh            # check all tracked *.md files
#   scripts/check-links.sh README.md  # check specific files
#
# External links (http/https/mailto) are not fetched — this is a
# referential-integrity check, not a liveness check. Pure in-page anchors
# ("#section") are skipped; "file.md#anchor" checks that file.md exists.
set -euo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    # SNIPPETS.md quotes excerpts of third-party repos verbatim, links and
    # all; those targets intentionally do not exist here.
    while IFS= read -r f; do
        case "$f" in SNIPPETS.md) continue ;; esac
        files+=("$f")
    done < <(git ls-files '*.md' 2>/dev/null || find . -name '*.md' -not -path './.git/*')
fi

fail=0
checked=0
for f in "${files[@]}"; do
    [ -f "$f" ] || { echo "check-links: no such file: $f" >&2; fail=1; continue; }
    dir=$(dirname "$f")
    # Inline links: [text](target). grep -o isolates each link; the sed
    # strips down to the target. Images ![alt](target) match the same shape.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*) continue ;;   # external
            '#'*) continue ;;                          # same-page anchor
            '') continue ;;
        esac
        path="${target%%#*}"                           # drop "#anchor"
        path="${path%% *}"                             # drop '"title"' suffix
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "$f: broken link -> $target" >&2
            fail=1
        fi
    done < <(grep -o '\[[^][]*\]([^()]*)' "$f" | sed 's/^\[[^][]*\](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
    echo "check-links: FAILED" >&2
    exit 1
fi
echo "check-links: OK ($checked relative links across ${#files[@]} files)"
