#!/usr/bin/env bash
# Benchmark regression gate: re-runs the perf snapshot (scripts/bench.sh) and
# diffs it against the checked-in baseline. Fails on
#   - any benchmark whose ns/op regressed more than TOLERANCE (default 15%),
#   - any benchmark whose allocs/op increased at all,
#   - the 4KB channel transfer allocating anything (must stay 0 allocs/op:
#     the recovery plane is pay-as-you-go and the fault-off hot path is
#     allocation-free by contract).
# Benchmarks present only in the current run are reported but never fail the
# gate (new benchmarks land with the PR that adds them). Benchmarks present
# only in the BASELINE fail it: a benchmark that silently vanishes is a gate
# that stopped measuring, which is how regressions walk in unnoticed.
#
# Usage: scripts/bench-compare.sh [baseline.json] [current.json]
#   baseline defaults to BENCH_PR10.json; with no current file the benchmarks
#   are re-run into a temp snapshot first.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${1:-BENCH_PR10.json}"
CUR="${2:-}"
TOLERANCE="${TOLERANCE:-15}"

if [ ! -f "$BASE" ]; then
  echo "bench-compare: baseline $BASE not found" >&2
  exit 1
fi
if [ -z "$CUR" ]; then
  CUR=$(mktemp /tmp/bench-current-XXXXXX.json)
  trap 'rm -f "$CUR"' EXIT
  scripts/bench.sh "$CUR" >&2
fi

# Extract "name ns_per_op allocs_per_op" triples from the snapshot's flat
# "benchmarks" object (baseline history blocks like baseline_pre_prN are
# skipped: only the final "benchmarks" section describes the commit).
extract() {
  awk '
    /^  "benchmarks": \{/ { live = 1; next }
    /^  \}/               { live = 0 }
    live && /^    "/ {
      line = $0
      name = line; sub(/^    "/, "", name); sub(/".*/, "", name)
      ns = "-"; allocs = "-"
      if (match(line, /"ns_per_op": [0-9.eE+-]+/))
        { ns = substr(line, RSTART + 13, RLENGTH - 13) }
      if (match(line, /"allocs_per_op": [0-9.eE+-]+/))
        { allocs = substr(line, RSTART + 17, RLENGTH - 17) }
      print name, ns, allocs
    }
  ' "$1"
}

extract "$BASE" > /tmp/bench-base.$$
extract "$CUR" > /tmp/bench-cur.$$

FAIL=0
while read -r name ns allocs; do
  base_line=$(grep "^$name " /tmp/bench-base.$$ || true)
  if [ -z "$base_line" ]; then
    echo "NEW      $name (no baseline entry)"
    continue
  fi
  base_ns=$(echo "$base_line" | cut -d' ' -f2)
  base_allocs=$(echo "$base_line" | cut -d' ' -f3)
  if [ "$ns" != "-" ] && [ "$base_ns" != "-" ]; then
    verdict=$(awk -v c="$ns" -v b="$base_ns" -v tol="$TOLERANCE" \
      'BEGIN { d = (c - b) * 100 / b; printf "%.1f %s", d, (d > tol ? "FAIL" : "ok") }')
    delta=${verdict% *}
    status=${verdict#* }
    if [ "$status" = "FAIL" ]; then
      echo "REGRESS  $name ns/op $base_ns -> $ns (+$delta% > ${TOLERANCE}%)"
      FAIL=1
    else
      echo "ok       $name ns/op $base_ns -> $ns ($delta%)"
    fi
  fi
  if [ "$allocs" != "-" ] && [ "$base_allocs" != "-" ]; then
    worse=$(awk -v c="$allocs" -v b="$base_allocs" 'BEGIN { print (c > b) ? 1 : 0 }')
    if [ "$worse" = "1" ]; then
      echo "REGRESS  $name allocs/op $base_allocs -> $allocs (any increase fails)"
      FAIL=1
    fi
  fi
done < /tmp/bench-cur.$$

# The hard floors, independent of the baseline file's content: the fault-off
# channel hot path and the steady-state columnar source loop are
# allocation-free by contract.
for floor in 'BenchmarkChannelTransfer/slot=4KB' 'BenchmarkSourceStepBatch'; do
  hot=$(grep "^$floor " /tmp/bench-cur.$$ | cut -d' ' -f3)
  if [ "${hot:--}" != "0" ]; then
    echo "FAIL: $floor allocs/op = ${hot:-missing}, want 0" >&2
    FAIL=1
  fi
done

while read -r name _ _; do
  if ! grep -q "^$name " /tmp/bench-cur.$$; then
    echo "GONE     $name (in baseline, not in current run — a vanished benchmark fails the gate)"
    FAIL=1
  fi
done < /tmp/bench-base.$$

rm -f /tmp/bench-base.$$ /tmp/bench-cur.$$
if [ "$FAIL" = "1" ]; then
  echo "bench-compare: perf regression against $BASE" >&2
  exit 1
fi
echo "bench-compare: no regression against $BASE (tolerance ${TOLERANCE}% ns/op, 0 alloc growth)"
