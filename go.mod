module github.com/slash-stream/slash

go 1.22
