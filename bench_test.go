// Benchmarks that regenerate the paper's evaluation: one benchmark per
// table and figure (§8), each driving the shared experiment harness at a
// benchmark-friendly scale. cmd/slash-bench runs the same experiments at
// full volume with progress output and table formatting.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig6aYSB -benchtime 3x
package slash_test

import (
	"testing"

	"github.com/slash-stream/slash/internal/harness"
)

// benchOptions keeps each iteration short while staying above the volume
// floor where the systems' differences are visible. Scale 0.4 runs long
// enough that throughput reflects the steady-state ingest loop: at smaller
// scales the fixed end-of-stream tail (final epoch flush, merge, and window
// triggers) dominates elapsed time and understates every system.
func benchOptions() harness.Options {
	return harness.Options{Scale: 0.4, Nodes: []int{2, 4}, Threads: 2, Seed: 42}
}

// runExperiment executes one harness experiment per iteration and reports
// the Slash series' throughput as the headline metric.
func runExperiment(b *testing.B, fn func(harness.Options) ([]harness.Row, error)) {
	b.Helper()
	var lastRows []harness.Row
	for i := 0; i < b.N; i++ {
		rows, err := fn(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		lastRows = rows
	}
	var slashRecs, slashSec float64
	var modelM float64
	for _, r := range lastRows {
		if r.System == "slash" {
			slashRecs += float64(r.Records)
			slashSec += r.Elapsed.Seconds()
			modelM += r.Metrics["model_Mrec_s"]
		}
	}
	if slashSec > 0 {
		b.ReportMetric(slashRecs/slashSec, "slash_rec/s")
	}
	if modelM > 0 {
		b.ReportMetric(modelM, "slash_model_Mrec/s")
	}
}

// BenchmarkFig6aYSB regenerates Fig. 6a: YSB weak scaling, Flink vs RDMA
// UpPar vs Slash.
func BenchmarkFig6aYSB(b *testing.B) { runExperiment(b, harness.Fig6a) }

// BenchmarkFig6bCM regenerates Fig. 6b: Cluster Monitoring weak scaling.
func BenchmarkFig6bCM(b *testing.B) { runExperiment(b, harness.Fig6b) }

// BenchmarkFig6cNB7 regenerates Fig. 6c: NEXMark Q7 weak scaling.
func BenchmarkFig6cNB7(b *testing.B) { runExperiment(b, harness.Fig6c) }

// BenchmarkFig6dNB8 regenerates Fig. 6d: NEXMark Q8 join weak scaling.
func BenchmarkFig6dNB8(b *testing.B) { runExperiment(b, harness.Fig6d) }

// BenchmarkFig6eNB11 regenerates Fig. 6e: NEXMark Q11 session join.
func BenchmarkFig6eNB11(b *testing.B) { runExperiment(b, harness.Fig6e) }

// BenchmarkFig7COST regenerates Fig. 7: the COST analysis against the
// LightSaber scale-up baseline on YSB, CM, and NB7.
func BenchmarkFig7COST(b *testing.B) { runExperiment(b, harness.Fig7) }

// BenchmarkFig8aBufferThroughput regenerates Fig. 8a: RO throughput versus
// channel buffer size on the throttled fabric.
func BenchmarkFig8aBufferThroughput(b *testing.B) { runExperiment(b, harness.Fig8a) }

// BenchmarkFig8bBufferLatency regenerates Fig. 8b: per-buffer latency
// versus buffer size.
func BenchmarkFig8bBufferLatency(b *testing.B) { runExperiment(b, harness.Fig8b) }

// BenchmarkFig8cParallelism regenerates Fig. 8c: RO throughput versus
// thread count (the saturation experiment).
func BenchmarkFig8cParallelism(b *testing.B) { runExperiment(b, harness.Fig8c) }

// BenchmarkFig8dSkew regenerates Fig. 8d: throughput and consumer load
// imbalance under Zipfian skew, for RO and YSB.
func BenchmarkFig8dSkew(b *testing.B) { runExperiment(b, harness.Fig8d) }

// BenchmarkFig9BreakdownRO regenerates Fig. 9: the top-down execution
// breakdown of RO (modelled from measured operation counts).
func BenchmarkFig9BreakdownRO(b *testing.B) { runExperiment(b, harness.Fig9) }

// BenchmarkFig10BreakdownYSB regenerates Fig. 10: the execution breakdown
// of YSB.
func BenchmarkFig10BreakdownYSB(b *testing.B) { runExperiment(b, harness.Fig10) }

// BenchmarkTable1Utilization regenerates Table 1: IPC, instructions and
// cycles per record, cache misses, and memory bandwidth on YSB.
func BenchmarkTable1Utilization(b *testing.B) { runExperiment(b, harness.Table1) }

// BenchmarkCreditSweep regenerates the §8.3.2 credit sweep (c = 4…64).
func BenchmarkCreditSweep(b *testing.B) { runExperiment(b, harness.CreditSweep) }

// BenchmarkAblations runs the design-choice ablations DESIGN.md calls out:
// push (WRITE) vs pull (READ) transfer, selective signaling, and the SSB
// epoch-length sweep.
func BenchmarkAblations(b *testing.B) { runExperiment(b, harness.Ablations) }
